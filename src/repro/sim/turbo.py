"""Turbo simulation backend: batch-stepped streams, one fused hot loop.

:class:`TurboSimulator` is a drop-in replacement for
:class:`~repro.sim.simulator.Simulator` (same constructor, ``run()``,
``now``, ``processed_events``) that produces **bit-identical** results —
same event order, same timing, same counters, same telemetry — faster.
It attacks the three costs that dominate the reference loop:

1. **Heap traffic.**  For single-channel systems (every single-core
   bench job) the global ``(cycle, seq, kind, payload)`` heap is
   replaced by a merge over *naturally ordered event streams*: one
   arrival deque per core (a core's issue cycles are monotonic, so the
   fused issue loop batch-steps the core to its next stall and the
   whole slack window of arrivals lands in a pre-sorted bucket), one
   completion-run deque (a channel's completion cycles are monotonic
   because every data burst chains on the shared bus), and a tiny list
   of controller wake-ups (the only stream without an ordering
   invariant; it holds at most a handful of entries, so a linear
   min-scan beats a heap).  A plain integer sequence counter advances
   at exactly the reference loop's push points, so tie-breaks — and
   therefore every simulated outcome — are reproduced exactly,
   including the reference loop's *stale* wake events (superseded wake
   entries are kept and processed, because popping one still clears the
   scheduled-wake latch and re-arms the next wake-up).

2. **Timing math and interpreter overhead.**  The single-channel loop
   is monolithic: the core's issue loop (``TraceCore.run_requests``),
   the controller's queueing and scheduling
   (``ChannelController.enqueue`` / ``wake`` / ``_try_schedule_bank``),
   and the whole direct-access timing chain (``Channel.access`` →
   ``Bank.access`` → ``Bank._activate``) are inlined into one function
   body.  Everything hot is a true local (``LOAD_FAST`` — no closure
   cells, no per-service calls), and the timing constants come from
   precompiled flat tables (:mod:`repro.sim.turbo_tables`) indexed by
   direction and speed class instead of chased through attributes.
   KEEP the inlined blocks IN SYNC with their sources (each block names
   its source); the golden fixtures and the cross-backend parity suite
   (``tests/test_backend.py``) enforce the equivalence.  For the
   in-DRAM-cache mechanisms (FIGCache, LISA-VILLA) the loop fuses the
   tag probe *and* the miss's row access, then tail-calls the shared
   insertion helpers (``FigCacheMechanism._insert_segment`` /
   ``LisaVillaMechanism._insert_row``) so the relocation logic itself
   stays in one place; only the cold service shapes (dirty-hit
   writebacks and friends) still go through ``service``.

3. **Allocation.**  Completed :class:`MemoryRequest` records are pooled
   in a freelist and reused for future arrivals.  Reused requests draw
   a fresh ``request_id`` from the same global counter, in the same
   order, so FCFS tie-breaking is unchanged.  The single-channel loop
   builds requests directly inside the fused issue loop (no
   ``IssuedRequest`` tuples, no intermediate list) and its arrival
   streams carry the pooled request itself — cycle in
   ``arrival_cycle``, sequence number in ``event_seq`` — so the hottest
   event kind allocates nothing at steady state.

Multi-channel systems run a replica of the reference heap loop with the
freelist pooling, inline address decode, and batch-stepped cores
(:func:`_compile_core_plan` + ``_step_core``: the cycle-free cache
hierarchy lets each core's hit/miss/writeback sequence be precompiled
into prefix arrays, so a core advances to its next memory event with a
``bisect`` instead of per-record simulation).  The stream merge itself
is not used there — a merge pays one head comparison per stream per
event, which loses to a C ``heappop`` once cores and channels multiply
the stream count.

State synchronisation: the single-channel loop keeps the controller's
hot scalar counters (queue occupancies, drain mode, completion counts)
in locals and writes them back before any outside observer can look —
at telemetry epoch boundaries, on safety-limit errors, and at loop exit
(before the end-of-run write drain).  Everything else (queues, wake-up
structures, bank/rank/core state, latency histograms, DRAM counters) is
mutated in place through the same objects the reference loop uses.
"""

from __future__ import annotations

import os
from bisect import bisect_left, insort
from collections import OrderedDict, deque
from heapq import heappop, heappush

from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest, _request_ids
from repro.cpu.core import TraceCore, _OutstandingMiss
from repro.sim.simulator import SimulatorLimits, interpreter_run_guard
from repro.sim.turbo_tables import tables_for_channel

_CORE_RUN = 0
_REQUEST_ARRIVAL = 1
_CONTROLLER_WAKE = 2

#: Calendar-queue bucket width (cycles) for the fused multi-channel
#: loop, as a shift: events are binned by ``cycle >> _BUCKET_SHIFT``.
#: 256 cycles comfortably covers a DRAM access round-trip, so most
#: same-window completions land in the already-sorted current bucket
#: (one ``insort`` past the drain pointer) instead of a future one.
_BUCKET_SHIFT = 8


def _compile_core_plan(core: TraceCore) -> tuple:
    """Precompute one core's cache simulation into a batch-step plan.

    The cache hierarchy is cycle-free: which accesses hit, which miss,
    and which victims write back depend only on the access ORDER (LRU
    over the address sequence), never on simulated time — and the core
    executes its trace strictly in order, each record exactly once.  So
    the whole three-level simulation runs here in one tight pass (the
    same inline blocks as :meth:`CacheHierarchy.access` — KEEP IN SYNC),
    and :func:`_step_core` later advances the core with prefix-sum
    arithmetic instead of per-record work:

    * ``cost_prefix[i]``  — issue-bandwidth cycles + exposed cache
      latency of records [0, i): a hit run between two memory-touching
      records advances ``core_cycle`` with one subtraction;
    * ``instr_prefix[i]`` — instructions issued by records [0, i):
      ``issued_instructions`` is a pure function of the record index,
      so window-stall points fall out of one bisect over this array;
    * ``mem_idx``/``mem_events`` — the sparse records that touch memory
      (an LLC miss and/or dirty victim writebacks), as
      ``(address, is_write, needs_memory, writebacks)`` tuples.

    Hierarchy state and counters reach their end-of-run values up
    front, which is unobservable: nothing reads them mid-run (the
    telemetry layer samples only ``CoreStats``, which the stepper keeps
    current from the prefix arrays and the returned stats bases), and
    safety-limit overruns raise instead of truncating the trace.
    """
    trace = core._trace_fast
    trace_length = core._trace_length
    next_record = core._next_record
    issued_instructions = core._issued_instructions
    hier = core.hierarchy
    fill_lower = hier._fill_lower
    l1 = hier.l1
    l1_sets = l1._sets
    l1_mask = l1._set_mask
    l1_num_sets = l1._num_sets
    l1_offset = l1._offset_bits
    l1_assoc = l1._associativity
    l1_lat = hier._l1_hit.exposed_latency
    l2 = hier.l2
    l2_sets = l2._sets
    l2_mask = l2._set_mask
    l2_num_sets = l2._num_sets
    l2_offset = l2._offset_bits
    l2_assoc = l2._associativity
    l2_lat = hier._l2_hit.exposed_latency
    llc = hier.llc
    llc_sets = llc._sets
    llc_mask = llc._set_mask
    llc_num_sets = llc._num_sets
    llc_offset = llc._offset_bits
    llc_assoc = llc._associativity
    llc_lat = hier._llc_hit.exposed_latency
    wb_list: list[int] = []
    # Per-level counters accumulate in locals and flush once after the
    # pass; _fill_lower keeps incrementing the attributes directly, which
    # composes because these are pure deltas.
    l1_hits = l1_misses = l1_writebacks = 0
    l2_hits = l2_misses = l2_writebacks = 0
    llc_hits = llc_misses = llc_writebacks = 0

    cost_prefix = [0] * (next_record + 1)
    cost_append = cost_prefix.append
    instr_prefix = [0] * next_record + [issued_instructions]
    instr_append = instr_prefix.append
    mem_idx: list[int] = []
    mem_idx_append = mem_idx.append
    mem_events: list[tuple] = []
    mem_events_append = mem_events.append
    cost_acc = 0
    instr_acc = issued_instructions
    for record_index in range(next_record, trace_length):
        issue_cycles, instructions, address, is_write = trace[record_index]
        instr_acc += instructions
        instr_append(instr_acc)

        block = address >> l1_offset
        cache_set = l1_sets[
            block & l1_mask if l1_mask is not None
            else block % l1_num_sets]
        dirty = cache_set.get(block)
        if dirty is not None:
            l1_hits += 1
            if next(reversed(cache_set)) == block:
                if is_write and not dirty:
                    cache_set[block] = True
            else:
                del cache_set[block]
                cache_set[block] = dirty or is_write
            cost_acc += issue_cycles + l1_lat
            cost_append(cost_acc)
            continue
        l1_misses += 1
        if len(cache_set) >= l1_assoc:
            victim_block = next(iter(cache_set))
            if cache_set.pop(victim_block):
                l1_writebacks += 1
                fill_lower(l2, victim_block << l1_offset, True, wb_list)
        cache_set[block] = is_write

        block = address >> l2_offset
        cache_set = l2_sets[
            block & l2_mask if l2_mask is not None
            else block % l2_num_sets]
        dirty = cache_set.get(block)
        if dirty is not None:
            l2_hits += 1
            if next(reversed(cache_set)) == block:
                if is_write and not dirty:
                    cache_set[block] = True
            else:
                del cache_set[block]
                cache_set[block] = dirty or is_write
            # An L2 hit absorbs the L1-victim fill's writebacks,
            # matching the reference model.
            if wb_list:
                del wb_list[:]
            cost_acc += issue_cycles + l2_lat
            cost_append(cost_acc)
            continue
        l2_misses += 1
        if len(cache_set) >= l2_assoc:
            victim_block = next(iter(cache_set))
            if cache_set.pop(victim_block):
                l2_writebacks += 1
                fill_lower(llc, victim_block << l2_offset, True, wb_list)
        cache_set[block] = is_write

        block = address >> llc_offset
        cache_set = llc_sets[
            block & llc_mask if llc_mask is not None
            else block % llc_num_sets]
        dirty = cache_set.get(block)
        if dirty is not None:
            llc_hits += 1
            if next(reversed(cache_set)) == block:
                if is_write and not dirty:
                    cache_set[block] = True
            else:
                del cache_set[block]
                cache_set[block] = dirty or is_write
            needs_memory = False
        else:
            llc_misses += 1
            if len(cache_set) >= llc_assoc:
                victim_block = next(iter(cache_set))
                if cache_set.pop(victim_block):
                    llc_writebacks += 1
                    wb_list.append(victim_block << llc_offset)
            cache_set[block] = is_write
            needs_memory = True
        cost_acc += issue_cycles + llc_lat
        cost_append(cost_acc)
        if wb_list:
            wbs = tuple(wb_list)
            del wb_list[:]
        else:
            wbs = ()
        if needs_memory or wbs:
            mem_idx_append(record_index)
            mem_events_append((address, is_write, needs_memory, wbs))
    l1.hits += l1_hits
    l1.misses += l1_misses
    l1.writebacks += l1_writebacks
    l2.hits += l2_hits
    l2.misses += l2_misses
    l2.writebacks += l2_writebacks
    llc.hits += llc_hits
    llc.misses += llc_misses
    llc.writebacks += llc_writebacks
    # Every LLC probe miss is a memory miss (and vice versa), so the
    # hierarchy-level counter advances in lockstep with llc.misses.
    hier.llc_misses += llc_misses
    hier.accesses += trace_length - next_record

    # CoreStats flush bases: the stepper assigns absolute values derived
    # from the prefix arrays, so telemetry epoch sampling always reads
    # current numbers no matter how far the core has stepped.
    stats_instr_base = core.stats.instructions - issued_instructions
    stats_mem_base = core.stats.memory_instructions - next_record
    return (cost_prefix, instr_prefix, mem_idx, mem_events,
            stats_instr_base, stats_mem_base)


# ----------------------------------------------------------------------
# Process-wide compiled-plan cache.
#
# A core's plan is a pure function of its trace contents and its cache-
# hierarchy geometry + latencies: the compile pass is a deterministic
# LRU simulation over the address sequence, so two fresh cores with the
# same (hierarchy, trace) pair always compile to the same prefix arrays
# and the same counter deltas.  Caching the plan makes the compile pass
# a one-time cost per (trace, config) instead of a per-run cost — the
# bench harness reuses its inputs across repeat passes, and the sweep
# engine's warm workers (see ``repro.experiments.engine.executor``)
# memoize trace and config objects per worker, so a warm worker that
# re-simulates a known workload skips plan compilation entirely (the
# cache is module-level state and therefore survives across the
# worker's job batches).
#
# On a cache hit the hierarchy's *counters* are replayed onto the fresh
# core from the recorded deltas; the LRU set contents themselves are
# left empty.  That is unobservable: results serialize the counters,
# never the set occupancy, and a plan-cache hit only ever happens on a
# fresh core (``_next_record == 0`` and untouched hierarchy counters),
# whose sets no later code reads.
# ----------------------------------------------------------------------

#: Environment opt-out: set to ``0`` to compile every plan from scratch.
PLAN_CACHE_ENV = "REPRO_TURBO_PLAN_CACHE"

#: LRU bound on cached plans.  Each entry holds the prefix arrays for
#: one trace (a few hundred KiB at bench scale), so the bound caps the
#: cache at tens of MiB while still covering a whole workload suite.
PLAN_CACHE_CAPACITY = 64

_plan_cache: OrderedDict = OrderedDict()
_plan_cache_counters = {"hits": 0, "misses": 0, "evictions": 0,
                        "compiles": 0, "bypasses": 0}


def plan_cache_enabled() -> bool:
    """Whether the compiled-plan cache is active (see PLAN_CACHE_ENV)."""
    return os.environ.get(PLAN_CACHE_ENV, "1") != "0"


def plan_cache_stats() -> dict:
    """Snapshot of the plan cache: size, capacity, and hit/miss counters.

    ``compiles`` counts every real :func:`_compile_core_plan` pass
    (cache misses plus bypasses), so warm-worker tests can assert that
    repeated batches stop compiling.  Counters are process-global and
    cumulative; diff two snapshots to scope them to one run.
    """
    return {
        "enabled": plan_cache_enabled(),
        "size": len(_plan_cache),
        "capacity": PLAN_CACHE_CAPACITY,
        **_plan_cache_counters,
    }


def clear_plan_cache() -> None:
    """Drop every cached plan and zero the counters (test isolation)."""
    _plan_cache.clear()
    for name in _plan_cache_counters:
        _plan_cache_counters[name] = 0


def _hierarchy_signature(core: TraceCore) -> tuple:
    """The hierarchy parameters the compile pass depends on.

    Exactly the fields :func:`_compile_core_plan` hoists: per-level set
    count, associativity, and offset bits decide hit/miss/writeback
    sequences; the exposed hit latencies decide the cost prefix.  Two
    hierarchies agreeing on these compile any trace identically.
    """
    hier = core.hierarchy
    l1 = hier.l1
    l2 = hier.l2
    llc = hier.llc
    return (l1._num_sets, l1._associativity, l1._offset_bits,
            hier._l1_hit.exposed_latency,
            l2._num_sets, l2._associativity, l2._offset_bits,
            hier._l2_hit.exposed_latency,
            llc._num_sets, llc._associativity, llc._offset_bits,
            hier._llc_hit.exposed_latency)


def _plan_for_core(core: TraceCore) -> tuple:
    """Compiled batch-step plan for ``core``, through the plan cache.

    Cache hits replay the recorded hierarchy counter deltas onto the
    core (the compile pass's only side effect) and recompute the
    ``CoreStats`` flush bases from the core's current stats.  Only a
    fresh core is eligible — a partially-run core (never the case for
    the simulators here, which compile once at run start) bypasses the
    cache, as does the :data:`PLAN_CACHE_ENV` opt-out.
    """
    hier = core.hierarchy
    if core._next_record != 0 or core._issued_instructions != 0 \
            or hier.accesses != 0 or not plan_cache_enabled():
        _plan_cache_counters["bypasses"] += 1
        _plan_cache_counters["compiles"] += 1
        return _compile_core_plan(core)
    key = (_hierarchy_signature(core), tuple(core._trace_fast))
    l1 = hier.l1
    l2 = hier.l2
    llc = hier.llc
    entry = _plan_cache.get(key)
    if entry is not None:
        _plan_cache.move_to_end(key)
        _plan_cache_counters["hits"] += 1
        cost_prefix, instr_prefix, mem_idx, mem_events, deltas = entry
        (d_l1_hits, d_l1_misses, d_l1_writebacks,
         d_l2_hits, d_l2_misses, d_l2_writebacks,
         d_llc_hits, d_llc_misses, d_llc_writebacks,
         d_hier_llc_misses, d_hier_accesses) = deltas
        l1.hits += d_l1_hits
        l1.misses += d_l1_misses
        l1.writebacks += d_l1_writebacks
        l2.hits += d_l2_hits
        l2.misses += d_l2_misses
        l2.writebacks += d_l2_writebacks
        llc.hits += d_llc_hits
        llc.misses += d_llc_misses
        llc.writebacks += d_llc_writebacks
        hier.llc_misses += d_hier_llc_misses
        hier.accesses += d_hier_accesses
        # Fresh core: issued_instructions and next_record are both zero,
        # so the flush bases reduce to the current absolute stats.
        stats = core.stats
        return (cost_prefix, instr_prefix, mem_idx, mem_events,
                stats.instructions, stats.memory_instructions)
    before = (l1.hits, l1.misses, l1.writebacks,
              l2.hits, l2.misses, l2.writebacks,
              llc.hits, llc.misses, llc.writebacks,
              hier.llc_misses, hier.accesses)
    _plan_cache_counters["misses"] += 1
    _plan_cache_counters["compiles"] += 1
    plan = _compile_core_plan(core)
    deltas = (l1.hits - before[0], l1.misses - before[1],
              l1.writebacks - before[2],
              l2.hits - before[3], l2.misses - before[4],
              l2.writebacks - before[5],
              llc.hits - before[6], llc.misses - before[7],
              llc.writebacks - before[8],
              hier.llc_misses - before[9], hier.accesses - before[10])
    _plan_cache[key] = (plan[0], plan[1], plan[2], plan[3], deltas)
    if len(_plan_cache) > PLAN_CACHE_CAPACITY:
        _plan_cache.popitem(last=False)
        _plan_cache_counters["evictions"] += 1
    return plan


def _step_core(core: TraceCore, plan: tuple, now: int) -> list:
    """Batch-stepped replacement for :meth:`TraceCore.run_requests`.

    Advances ``core`` through its precompiled plan (KEEP the stall and
    bookkeeping semantics IN SYNC with ``run_requests``): the loop runs
    once per memory-touching record instead of once per trace record,
    with cache-hit runs applied as prefix-sum differences and window
    stalls located by one bisect.  State round-trips through the core's
    attributes so :meth:`TraceCore.notify_completion` (and any outside
    reader) keeps working unchanged between calls.  Returns the issued
    requests as ``(issue_cycle, address, is_write)`` tuples, exactly
    like the reference's ``IssuedRequest`` entries unpack.
    """
    requests: list = []
    if core._finished:
        return requests
    (cost_prefix, instr_prefix, mem_idx, mem_events,
     stats_instr_base, stats_mem_base) = plan
    trace_length = len(cost_prefix) - 1
    trace_n1 = trace_length + 1
    next_record = core._next_record
    core_cycle = core._core_cycle
    if now > core_cycle:
        core_cycle = now
    outstanding = core._outstanding
    outstanding_append = outstanding.append
    mshr_entries = core._mshr_entries
    mshr_capacity = core._mshr_capacity
    mshr_get = mshr_entries.get
    mshr_shift = core._mshr_shift
    block_mask = core._block_mask
    mshrs = core.mshrs
    window_size = core._window_size
    run_stats = core.stats
    requests_append = requests.append
    n_mem_events = len(mem_idx)
    mem_ptr = bisect_left(mem_idx, next_record)
    new_writebacks = 0
    new_miss_loads = 0
    new_miss_stores = 0
    while next_record < trace_length:
        if len(mshr_entries) >= mshr_capacity:
            break
        if outstanding:
            oldest = outstanding[0]
            if oldest.blocks_window:
                window_limit = oldest.instruction_position + window_size
                if instr_prefix[next_record] >= window_limit:
                    break
                stop = bisect_left(instr_prefix, window_limit,
                                   next_record + 1)
            else:
                stop = trace_n1
        else:
            stop = trace_n1
        ev = mem_idx[mem_ptr] if mem_ptr < n_mem_events else trace_length
        if ev < stop and ev < trace_length:
            # Hit run up to (and including) the memory record — its
            # issue cost and exposed cache latency are in the prefix.
            core_cycle += cost_prefix[ev + 1] - cost_prefix[next_record]
            next_record = ev + 1
            address, is_write, needs_memory, wbs = mem_events[mem_ptr]
            mem_ptr += 1
            for writeback_address in wbs:
                new_writebacks += 1
                requests_append((core_cycle, writeback_address, True))
            if not needs_memory:
                continue
            # Inline MSHRFile.allocate: the loop head guarantees a free
            # entry.
            block = address >> mshr_shift
            merged_count = mshr_get(block)
            if merged_count is None:
                mshr_entries[block] = 1
                mshrs.allocations += 1
                new_entry = True
            else:
                mshr_entries[block] = merged_count + 1
                mshrs.merges += 1
                new_entry = False
            if is_write:
                new_miss_stores += 1
            else:
                new_miss_loads += 1
            if new_entry:
                requests_append((core_cycle, address, False))
                outstanding_append(_OutstandingMiss(
                    address, instr_prefix[next_record], not is_write,
                    address & block_mask))
            elif not is_write:
                # The miss merged into an existing MSHR; the load still
                # blocks the window on the earlier request's completion.
                outstanding_append(_OutstandingMiss(
                    address, instr_prefix[next_record], True,
                    address & block_mask))
            continue
        # No executable memory record: pure hit run to the window-stall
        # point or the end of the trace.
        stop_record = stop if stop < trace_length else trace_length
        core_cycle += cost_prefix[stop_record] - cost_prefix[next_record]
        next_record = stop_record
        break
    core._next_record = next_record
    core._core_cycle = core_cycle
    issued_instructions = instr_prefix[next_record]
    core._issued_instructions = issued_instructions
    run_stats.instructions = stats_instr_base + issued_instructions
    run_stats.memory_instructions = stats_mem_base + next_record
    run_stats.writebacks += new_writebacks
    run_stats.llc_miss_loads += new_miss_loads
    run_stats.llc_miss_stores += new_miss_stores
    if next_record >= trace_length and not outstanding:
        core._retire()
    return requests


class TurboSimulator:
    """Accelerated event-driven co-simulation (bit-identical results)."""

    __slots__ = ('_cores', '_controller', '_limits', '_telemetry', '_now',
                 'processed_events')

    def __init__(self, cores: list[TraceCore], controller: MemoryController,
                 limits: SimulatorLimits | None = None,
                 telemetry=None):
        if not cores:
            raise ValueError("at least one core is required")
        self._cores = cores
        self._controller = controller
        self._limits = limits or SimulatorLimits()
        self._telemetry = telemetry
        self._now = 0
        self.processed_events = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def run(self) -> int:
        """Run until every core finishes its trace; returns the final cycle.

        The fully-fused single-channel loop inlines the controller service
        path the event tracer hooks into, so traced runs take the generic
        loop instead — bit-identical by the backend parity contract, and
        the fused path stays free of tracing checks.
        """
        with interpreter_run_guard():
            if len(self._controller.channel_controllers) == 1 \
                    and len(self._cores) == 1 \
                    and self._controller.channel_controllers[0].tracer is None:
                return self._run_single()
            return self._run_multi()

    # ------------------------------------------------------------------
    # Shared tail: write drain and telemetry finalisation.
    # ------------------------------------------------------------------
    def _finish(self, cycle: int, processed: int) -> int:
        self._now = max(self._now, cycle)
        self.processed_events = processed
        # Flush any writes still sitting in the controller queues so that
        # command counts and energy reflect the whole workload.
        finish_cycle = max((core.stats.finish_cycle for core in self._cores),
                          default=self._now)
        drain_cycle = self._controller.drain_all(self._now)
        self._now = max(self._now, drain_cycle, finish_cycle)
        if self._telemetry is not None:
            # Close the trailing partial epoch (includes the write drain).
            self._telemetry.finalize(self._now)
        return finish_cycle

    def _raise_limit(self, cycle: int) -> None:
        """Report which safety limit the next event would exceed."""
        if cycle > self._limits.max_cycles:
            raise RuntimeError(
                f"simulation exceeded {self._limits.max_cycles} cycles")
        raise RuntimeError(
            f"simulation exceeded {self._limits.max_events} events "
            f"({self.processed_events} processed)")

    # ------------------------------------------------------------------
    # Fused single-channel loop.
    # ------------------------------------------------------------------
    def _run_single(self) -> int:
        from repro.baselines.lisa_villa import LISAVillaMechanism
        from repro.core.figcache import FIGCache
        from repro.dram.address import DecodedAddress

        controller = self._controller
        cc = controller.channel_controllers[0]
        channel = cc.channel
        banks = channel._banks
        rank_of = channel._rank_of
        apply_refresh = channel._apply_refresh
        # Refresh enablement is uniform across a channel's ranks (one
        # constructor flag; see Channel.__init__).
        refresh_on = rank_of[0].refresh_enabled if rank_of else False
        counters = channel.counters
        track_rows = counters.track_row_activations
        # DRAM counter deltas live in locals and are flushed at every
        # observation point (telemetry epochs, safety-limit errors, loop
        # exit).  External increments — refresh, the mechanism's miss
        # path, the end-of-run drain — keep mutating the attributes
        # directly; the deltas compose with them because nothing reads
        # the counters between flushes.
        c_row_hits = 0
        c_row_misses = 0
        c_row_conflicts = 0
        c_precharges = 0
        c_activates = 0
        c_fast_activates = 0
        c_reads = 0
        c_fast_reads = 0
        c_writes = 0
        c_fast_writes = 0

        tables = tables_for_channel(channel)
        col_table = tables.col
        act_table = tables.act
        trp_slow, trp_fast = tables.trp
        trrd = tables.trrd
        tfaw = tables.tfaw
        col_pacing = tables.col_pacing
        tccd_l = tables.tccd_l
        tccd_s = tables.tccd_s
        act_bg_pacing = tables.act_bg_pacing
        trrd_l = tables.trrd_l
        all_fast = tables.all_fast
        regular_rows = tables.regular_rows

        # Controller internals, hoisted (mutated in place; the scalar
        # counters live in true locals and are synced back at every
        # observation point).
        reads_by_bank = cc._reads_by_bank
        writes_by_bank = cc._writes_by_bank
        reads_get = reads_by_bank.get
        writes_get = writes_by_bank.get
        wakeup_heap, wakeup_cycle = cc.wakeup_view()
        wakeup_get = wakeup_cycle.get
        read_latencies = cc.read_latencies
        write_latencies = cc.write_latencies
        read_lat_get = read_latencies.get
        write_lat_get = write_latencies.get
        row_of = cc._row_of
        direct_access = cc._direct_access
        mechanism = cc.mechanism
        mech_service = mechanism.service

        # Mechanism specialisation: the FIGCache and LISA-VILLA *hit*
        # paths (tag probe, benefit/recency/dirty bookkeeping, target-row
        # redirection) are inlined below.  Misses are fused too: the
        # access itself is the plain timing block on the decoded row
        # (exactly ``Channel.access``), and the insertion tail — the
        # only mutation the miss path owns — runs afterwards through the
        # shared ``_insert_segment`` / ``_insert_row`` helpers, so the
        # relocation and replacement policies stay in one place.
        # ``scan_kind`` picks the inline ``effective_row`` used by the
        # FR-FCFS first-ready scan; ``service_kind`` picks the fused
        # service resolution.  Unknown mechanism subclasses take the
        # generic call paths (kind 3).  KEEP the inlined blocks IN SYNC
        # with FIGCache.effective_row / FIGCache.service and
        # LISAVillaMechanism.effective_row / LISAVillaMechanism.service.
        fig_lookup = fig_entries = fig_tags = fig_row_ids = None
        fig_stats = lisa_stats = None
        fig_bank_caches = fig_may_cache = fig_insert = None
        lisa_bank_state = lisa_insert = None
        seg_blocks = segments_per_row = fig_benefit_max = 0
        lisa_banks_get = None
        lisa_benefit_max = lisa_fast_base = 0
        if direct_access:
            service_kind = 0
        elif type(mechanism) is FIGCache:
            service_kind = 1
            fig_stats = mechanism.stats
            seg_blocks = mechanism._segment_blocks
            bank_caches = [mechanism._bank_cache(index)
                           for index in range(len(banks))]
            fig_lookup = [cache.tags._lookup for cache in bank_caches]
            fig_entries = [cache.tags._entries for cache in bank_caches]
            fig_tags = [cache.tags for cache in bank_caches]
            fig_row_ids = [cache.cache_row_ids for cache in bank_caches]
            segments_per_row = bank_caches[0].tags._segments_per_row
            fig_benefit_max = bank_caches[0].tags._benefit_max
            fig_bank_caches = bank_caches
            fig_may_cache = mechanism._may_cache
            fig_insert = mechanism._insert_segment
        elif type(mechanism) is LISAVillaMechanism:
            service_kind = 2
            lisa_stats = mechanism.stats
            lisa_banks_get = mechanism._banks.get
            lisa_benefit_max = mechanism._benefit_max
            lisa_fast_base = mechanism._fast_row_base
            lisa_bank_state = mechanism._bank_state
            lisa_insert = mechanism._insert_row
        else:
            service_kind = 3
        if row_of is None:
            scan_kind = 0
        elif service_kind in (1, 2):
            scan_kind = service_kind
        else:
            scan_kind = 3

        # Address decode, inlined for route-cache misses (most bench
        # traces touch each block a handful of times, so decodes are a
        # sizeable share of arrivals).  KEEP IN SYNC with
        # AddressMapper.decode / AddressMapper.flat_bank; the dispatch
        # guarantees a single channel, so the channel field is zero.
        mapper = controller._device.mapper
        offset_bits = mapper._offset_bits
        column_bits = mapper._column_bits
        column_mask = (1 << column_bits) - 1
        bank_bits = mapper._bank_bits
        bank_mask = (1 << bank_bits) - 1
        bankgroup_bits = mapper._bankgroup_bits
        bankgroup_mask = (1 << bankgroup_bits) - 1
        rank_bits = mapper._rank_bits
        rank_mask = (1 << rank_bits) - 1
        rows_per_bank = mapper._rows
        banks_per_rank = mapper._banks_per_rank
        banks_per_bankgroup = mapper._banks_per_bankgroup
        route_cache = controller._route_cache
        decoded_address = DecodedAddress

        drain_high = cc._drain_high
        drain_low = cc._drain_low
        read_count = cc._read_count
        write_count = cc._write_count
        drain_mode = cc._drain_mode
        completed_reads = cc.completed_reads
        completed_writes = cc.completed_writes
        route_cache_get = route_cache.get

        max_cycles = self._limits.max_cycles
        max_events = self._limits.max_events
        telemetry = self._telemetry
        epoch_end = telemetry.next_epoch if telemetry is not None \
            else max_cycles + 1

        request_ids = _request_ids
        freelist: list[MemoryRequest] = []
        freelist_pop = freelist.pop
        freelist_append = freelist.append

        # The single core's state lives in true locals for the whole run
        # (KEEP IN SYNC with TraceCore.run_requests /
        # TraceCore.notify_completion / TraceCore._retire): the batch
        # issue loop and the inlined completion notification read and
        # write them directly, and the scalars are published back to the
        # core at every outside observation point.  ``run_stats`` is the
        # core's live CoreStats — telemetry sampling reads it between
        # events, when the per-batch accumulators are always flushed.
        core = self._cores[0]
        (trace, trace_length, mshr_entries, mshr_capacity, outstanding,
         window_size, _issue_width, _hierarchy_access, mshrs, mshr_shift,
         run_stats) = core._run_hot
        core_id = core.core_id
        block_mask = core._block_mask
        mshr_get = mshr_entries.get
        outstanding_append = outstanding.append
        next_record = core._next_record
        core_cycle = core._core_cycle
        issued_instructions = core._issued_instructions
        finished = core._finished

        # --------------------------------------------------------------
        # Precompile the batch-step plan for the single core (see
        # _compile_core_plan): the cache hierarchy is cycle-free, so its
        # whole three-level simulation runs up front and the core-run
        # handler below advances the core with prefix-sum arithmetic —
        # one loop iteration per memory-touching record, not per trace
        # record.
        (cost_prefix, instr_prefix, mem_idx, mem_events,
         stats_instr_base, stats_mem_base) = _plan_for_core(core)
        trace_n1 = trace_length + 1
        n_mem_events = len(mem_idx)
        mem_ptr = 0
        stat_writebacks = run_stats.writebacks
        stat_miss_loads = run_stats.llc_miss_loads
        stat_miss_stores = run_stats.llc_miss_stores

        # Event streams.  ``seq`` advances at exactly the reference
        # loop's push points so (cycle, seq) ordering is reproduced.
        seq = 0
        runs: deque = deque()
        runs_append = runs.append
        runs_popleft = runs.popleft
        runs_append((0, seq))
        seq += 1
        arrivals: deque = deque()
        arrivals_append = arrivals.append
        arrivals_popleft = arrivals.popleft
        wakes: list[tuple[int, int]] = []
        wakes_append = wakes.append
        scheduled_wake: int | None = None
        processed = self.processed_events
        cycle = 0

        while True:
            # ----------------------------------------------------------
            # Pop the lexicographically smallest (cycle, seq) stream head.
            # ----------------------------------------------------------
            if runs:
                head = runs[0]
                best_cycle = head[0]
                best_seq = head[1]
                best_kind = _CORE_RUN
            else:
                best_kind = -1
                best_cycle = 0
                best_seq = 0
            if arrivals:
                req = arrivals[0]
                req_cycle = req.arrival_cycle
                if best_kind < 0 or req_cycle < best_cycle \
                        or (req_cycle == best_cycle
                            and req.event_seq < best_seq):
                    best_cycle = req_cycle
                    best_seq = req.event_seq
                    best_kind = _REQUEST_ARRIVAL
            if wakes:
                wake_index = 0
                wake_best = wakes[0]
                for i in range(1, len(wakes)):
                    if wakes[i] < wake_best:
                        wake_best = wakes[i]
                        wake_index = i
                wake_cycle, wake_seq = wake_best
                if best_kind < 0 or wake_cycle < best_cycle \
                        or (wake_cycle == best_cycle
                            and wake_seq < best_seq):
                    best_cycle = wake_cycle
                    best_seq = wake_seq
                    best_kind = _CONTROLLER_WAKE
            if best_kind < 0:
                break
            cycle = best_cycle
            if cycle > max_cycles or processed >= max_events:
                counters.row_hits += c_row_hits
                counters.row_misses += c_row_misses
                counters.row_conflicts += c_row_conflicts
                counters.precharges += c_precharges
                counters.activates += c_activates
                counters.fast_activates += c_fast_activates
                counters.reads += c_reads
                counters.fast_reads += c_fast_reads
                counters.writes += c_writes
                counters.fast_writes += c_fast_writes
                c_row_hits = c_row_misses = c_row_conflicts = 0
                c_precharges = c_activates = c_fast_activates = 0
                c_reads = c_fast_reads = c_writes = c_fast_writes = 0
                cc._read_count = read_count
                cc._write_count = write_count
                cc._drain_mode = drain_mode
                cc.completed_reads = completed_reads
                cc.completed_writes = completed_writes
                core._next_record = next_record
                core._core_cycle = core_cycle
                core._issued_instructions = issued_instructions
                core._finished = finished
                self._now = cycle
                self.processed_events = processed
                self._raise_limit(cycle)
            if cycle >= epoch_end:
                # The sampler reads the controller's counters: publish
                # the locals before letting it observe.
                counters.row_hits += c_row_hits
                counters.row_misses += c_row_misses
                counters.row_conflicts += c_row_conflicts
                counters.precharges += c_precharges
                counters.activates += c_activates
                counters.fast_activates += c_fast_activates
                counters.reads += c_reads
                counters.fast_reads += c_fast_reads
                counters.writes += c_writes
                counters.fast_writes += c_fast_writes
                c_row_hits = c_row_misses = c_row_conflicts = 0
                c_precharges = c_activates = c_fast_activates = 0
                c_reads = c_fast_reads = c_writes = c_fast_writes = 0
                cc._read_count = read_count
                cc._write_count = write_count
                cc._drain_mode = drain_mode
                cc.completed_reads = completed_reads
                cc.completed_writes = completed_writes
                epoch_end = telemetry.advance(cycle)
            processed += 1

            #: Banks the shared scheduling block should try to issue on,
            #: and the requests completed by this event.
            due_banks = None
            completed = None

            if best_kind == _REQUEST_ARRIVAL:
                # Inline MemoryController.enqueue (route probe + decode)
                # + ChannelController.enqueue (KEEP IN SYNC).
                request = arrivals_popleft()
                address = request.address
                route_entry = route_cache_get(address)
                if route_entry is None:
                    bits = address >> offset_bits
                    column = bits & column_mask
                    bits >>= column_bits
                    bank_index = bits & bank_mask
                    bits >>= bank_bits
                    bankgroup = bits & bankgroup_mask
                    bits >>= bankgroup_bits
                    rank_index = (bits & rank_mask) if rank_bits else 0
                    bits >>= rank_bits
                    decoded = decoded_address(0, rank_index, bankgroup,
                                              bank_index,
                                              bits % rows_per_bank, column)
                    flat_bank = (rank_index * banks_per_rank
                                 + bankgroup * banks_per_bankgroup
                                 + bank_index)
                    route_cache[address] = (decoded, flat_bank, cc)
                    request.decoded = decoded
                    request.flat_bank = flat_bank
                else:
                    request.decoded = route_entry[0]
                    flat_bank = request.flat_bank = route_entry[1]
                handled = False
                if request.is_write:
                    write_count += 1
                    if not drain_mode and write_count >= drain_high:
                        drain_mode = True
                    index = writes_by_bank
                else:
                    index = reads_by_bank
                    # Enqueue fast path: a sole read to a free bank is
                    # picked unconditionally — service it immediately.
                    if flat_bank not in reads_by_bank \
                            and flat_bank not in writes_by_bank:
                        bank = banks[flat_bank]
                        busy_until = bank._busy_until
                        nca = bank._next_col_allowed
                        ready_at = busy_until if busy_until > nca else nca
                        if ready_at <= cycle:
                            # SERVICE copy A (read fast path) — KEEP IN
                            # SYNC with copy B in the scheduling block
                            # below, with Channel.access / Bank.access /
                            # Bank._activate, with the FIGCache and
                            # LISA-VILLA hit paths, and with the
                            # completion bookkeeping of
                            # _try_schedule_bank.  Resolve the target
                            # row first: direct access serves the
                            # decoded row; an in-DRAM cache hit runs its
                            # tag bookkeeping inline and redirects to
                            # the cache row (or the still-open source
                            # row); misses and unknown mechanisms take
                            # the generic service call.
                            decoded = request.decoded
                            insert_kind = 0
                            if service_kind == 0:
                                row = decoded.row
                                cache_hit = None
                                fused = True
                            elif service_kind == 1:
                                src_row = decoded.row
                                segment = (decoded.column_block
                                           // seg_blocks)
                                slot = fig_lookup[flat_bank].get(
                                    (src_row, segment))
                                if slot is None:
                                    # Fused miss: serve the source row
                                    # through the timing block below;
                                    # the insertion tail runs after it.
                                    fig_stats.cache_lookups += 1
                                    row = src_row
                                    cache_hit = False
                                    insert_kind = 1
                                    fused = True
                                else:
                                    fig_stats.cache_lookups += 1
                                    fig_stats.cache_hits += 1
                                    tag_entry = \
                                        fig_entries[flat_bank][slot]
                                    if tag_entry.benefit < fig_benefit_max:
                                        tag_entry.benefit += 1
                                    tags = fig_tags[flat_bank]
                                    tags._touch_counter += 1
                                    tag_entry.last_touch = \
                                        tags._touch_counter
                                    if not tag_entry.dirty \
                                            and bank.open_row == src_row:
                                        row = src_row
                                    else:
                                        row = fig_row_ids[flat_bank][
                                            slot // segments_per_row]
                                    cache_hit = True
                                    fused = True
                            elif service_kind == 2:
                                src_row = decoded.row
                                state = lisa_banks_get(flat_bank)
                                tag_entry = None if state is None \
                                    else state.entries.get(src_row)
                                if tag_entry is None:
                                    lisa_stats.cache_lookups += 1
                                    row = src_row
                                    cache_hit = False
                                    insert_kind = 2
                                    fused = True
                                else:
                                    lisa_stats.cache_lookups += 1
                                    lisa_stats.cache_hits += 1
                                    if tag_entry.benefit \
                                            < lisa_benefit_max:
                                        tag_entry.benefit += 1
                                    if not tag_entry.dirty \
                                            and bank.open_row == src_row:
                                        row = src_row
                                    else:
                                        row = lisa_fast_base \
                                            + tag_entry.cache_slot
                                    cache_hit = True
                                    fused = True
                            else:
                                fused = False
                            if fused:
                                rank = rank_of[flat_bank]
                                if refresh_on \
                                        and cycle >= rank.next_refresh_due:
                                    start = apply_refresh(cycle, flat_bank)
                                else:
                                    start = cycle
                                served_fast = all_fast \
                                    or row >= regular_rows
                                busy_until = bank._busy_until
                                if busy_until > start:
                                    start = busy_until
                                open_row = bank.open_row
                                if open_row == row:
                                    outcome = "hit"
                                    c_row_hits += 1
                                    col_cycle = bank._next_col_allowed
                                    if start > col_cycle:
                                        col_cycle = start
                                else:
                                    if open_row is None:
                                        outcome = "miss"
                                        c_row_misses += 1
                                        act_cycle = start
                                        naa = bank._next_act_allowed
                                        if act_cycle < naa:
                                            act_cycle = naa
                                    else:
                                        outcome = "conflict"
                                        c_row_conflicts += 1
                                        pre_cycle = bank._next_pre_allowed
                                        if start > pre_cycle:
                                            pre_cycle = start
                                        act_cycle = pre_cycle + (
                                            trp_fast if all_fast
                                            or open_row >= regular_rows
                                            else trp_slow)
                                        c_precharges += 1
                                    # Inline Bank._activate with rank
                                    # tRRD/tFAW pacing and the bank-group
                                    # tRRD_L split.
                                    rrd_earliest = \
                                        rank._last_activate + trrd
                                    if rrd_earliest > act_cycle:
                                        act_cycle = rrd_earliest
                                    recent = rank._recent_activates
                                    if len(recent) == 4:
                                        faw_earliest = recent[0] + tfaw
                                        if faw_earliest > act_cycle:
                                            act_cycle = faw_earliest
                                    if act_bg_pacing:
                                        bg_last = rank._bg_last_act
                                        bg_index = bank._bg_index
                                        bg_earliest = \
                                            bg_last[bg_index] + trrd_l
                                        if bg_earliest > act_cycle:
                                            act_cycle = bg_earliest
                                        bg_last[bg_index] = act_cycle
                                    rank._last_activate = act_cycle
                                    recent.append(act_cycle)
                                    c_activates += 1
                                    if served_fast:
                                        c_fast_activates += 1
                                    if track_rows:
                                        counters.record_row_activation(
                                            bank._key, row)
                                    bank.open_row = row
                                    bank._last_act = act_cycle
                                    trcd, tras = act_table[served_fast]
                                    bank._next_pre_allowed = \
                                        act_cycle + tras
                                    col_cycle = act_cycle + trcd
                                if col_pacing:
                                    bg_index = bank._bg_index
                                    earliest_col = \
                                        rank._bg_last_col[bg_index] + tccd_l
                                    cross = rank._last_col_cycle + tccd_s
                                    if cross > earliest_col:
                                        earliest_col = cross
                                    if earliest_col > col_cycle:
                                        col_cycle = earliest_col
                                data_latency, tbl, tccd, t_a, t_b = \
                                    col_table[served_fast]
                                burst_start = col_cycle + data_latency
                                bus_free_at = channel._bus_free_at
                                if burst_start < bus_free_at:
                                    burst_start = bus_free_at
                                    col_cycle = burst_start - data_latency
                                completion = burst_start + tbl
                                channel._bus_free_at = completion
                                c_reads += 1
                                if served_fast:
                                    c_fast_reads += 1
                                next_col = col_cycle + tccd
                                next_pre = col_cycle + t_a     # tRTP
                                if next_col > bank._next_col_allowed:
                                    bank._next_col_allowed = next_col
                                if next_pre > bank._next_pre_allowed:
                                    bank._next_pre_allowed = next_pre
                                if col_cycle > bank._busy_until:
                                    bank._busy_until = col_cycle
                                if col_pacing:
                                    rank._last_col_cycle = col_cycle
                                    rank._bg_last_col[bg_index] = col_cycle
                                request.in_dram_cache_hit = cache_hit
                                request.row_buffer_outcome = outcome
                                request.served_fast = served_fast
                                if insert_kind:
                                    # Inline FIGCache.service /
                                    # LISAVillaMechanism.service miss
                                    # tails (KEEP IN SYNC): insertion
                                    # starts when the access data is
                                    # back.  This path never schedules
                                    # a bank wake, so the pushed-out
                                    # bank readiness needs no re-read.
                                    if insert_kind == 1:
                                        bank_cache = \
                                            fig_bank_caches[flat_bank]
                                        insertion = \
                                            bank_cache.insertion
                                        if (bank_cache
                                                .excluded_subarray < 0
                                                or fig_may_cache(
                                                    bank_cache,
                                                    src_row)) \
                                                and (insertion
                                                     .always_inserts
                                                     or insertion
                                                     .should_insert(
                                                         src_row,
                                                         segment)):
                                            fig_insert(
                                                channel, completion,
                                                flat_bank, bank_cache,
                                                src_row, segment,
                                                dirty=False)
                                    else:
                                        if state is None:
                                            state = lisa_bank_state(
                                                flat_bank)
                                        lisa_insert(channel,
                                                    completion,
                                                    flat_bank, state,
                                                    src_row,
                                                    dirty=False)
                            else:
                                result = mech_service(channel, cycle,
                                                      decoded,
                                                      flat_bank, False)
                                completion = result.completion_cycle
                                request.in_dram_cache_hit = \
                                    result.in_dram_cache_hit
                                request.row_buffer_outcome = \
                                    result.row_buffer_outcome
                                request.served_fast = result.served_fast
                            request.issue_cycle = cycle
                            request.completion_cycle = completion
                            completed_reads += 1
                            latency = completion - request.arrival_cycle
                            read_latencies[latency] = \
                                read_lat_get(latency, 0) + 1
                            # Inline TraceCore.notify_completion, copy A
                            # (KEEP IN SYNC with copy B in the shared
                            # delivery block and with TraceCore).
                            block = address & block_mask
                            kept = [miss for miss in outstanding
                                    if miss.block != block]
                            if len(kept) != len(outstanding):
                                oldest = outstanding[0]
                                stalled_before = \
                                    len(mshr_entries) >= mshr_capacity \
                                    or (oldest.blocks_window
                                        and (issued_instructions
                                             - oldest
                                             .instruction_position)
                                        >= window_size)
                                outstanding[:] = kept
                                del mshr_entries[address >> mshr_shift]
                                if kept:
                                    oldest = kept[0]
                                    can_progress = not (
                                        oldest.blocks_window
                                        and (issued_instructions
                                             - oldest
                                             .instruction_position)
                                        >= window_size)
                                else:
                                    can_progress = True
                                if can_progress \
                                        and completion > core_cycle:
                                    stall = completion - core_cycle
                                    if stalled_before \
                                            and len(mshr_entries) + 1 \
                                            >= mshr_capacity:
                                        run_stats.stall_cycles_mshr += \
                                            stall
                                    else:
                                        run_stats.stall_cycles_window += \
                                            stall
                                    core_cycle = completion
                                if next_record >= trace_length \
                                        and not outstanding:
                                    # Inline TraceCore._retire.
                                    finished = True
                                    run_stats.finish_cycle = core_cycle
                                if can_progress and not finished:
                                    runs_append((completion, seq))
                                    seq += 1
                            freelist_append(request)
                            handled = True
                    if not handled:
                        read_count += 1
                if not handled:
                    # Queue insert in FCFS (request_id) order.
                    queue = index.get(flat_bank)
                    if queue is None:
                        index[flat_bank] = deque((request,))
                    elif queue[-1].request_id < request.request_id:
                        queue.append(request)
                    else:
                        # Rare out-of-order arrival: restore FCFS order.
                        position = len(queue) - 1
                        request_id = request.request_id
                        while position > 0 \
                                and queue[position - 1].request_id \
                                > request_id:
                            position -= 1
                        queue.insert(position, request)
                    bank = banks[flat_bank]
                    busy_until = bank._busy_until
                    nca = bank._next_col_allowed
                    ready_at = busy_until if busy_until > nca else nca
                    if ready_at > cycle:
                        # Busy bank: note the wake-up (pending work is
                        # guaranteed — the request was just queued).
                        existing = wakeup_get(flat_bank)
                        if existing is None or ready_at < existing:
                            wakeup_cycle[flat_bank] = ready_at
                            heappush(wakeup_heap, (ready_at, flat_bank))
                    else:
                        due_banks = (flat_bank,)
            elif best_kind == _CORE_RUN:
                # Fused TraceCore.run_requests (KEEP IN SYNC), batch-
                # stepped over the precomputed cache simulation: each
                # iteration of the loop below handles one memory-touching
                # record (or one stall), and the cache-hit run leading up
                # to it advances the core with two prefix-array
                # subtractions.  Window-stall points come from a single
                # bisect over the instruction prefix; the MSHR-full and
                # oldest-miss conditions are loop-invariant between
                # memory records, so checking them once per iteration is
                # exactly the reference's per-record check.
                runs_popleft()
                if not finished:
                    if cycle > core_cycle:
                        core_cycle = cycle
                    while next_record < trace_length:
                        if len(mshr_entries) >= mshr_capacity:
                            break
                        if outstanding:
                            oldest = outstanding[0]
                            if oldest.blocks_window:
                                window_limit = (oldest.instruction_position
                                                + window_size)
                                if instr_prefix[next_record] >= window_limit:
                                    break
                                stop = bisect_left(instr_prefix,
                                                   window_limit,
                                                   next_record + 1)
                            else:
                                stop = trace_n1
                        else:
                            stop = trace_n1
                        ev = mem_idx[mem_ptr] if mem_ptr < n_mem_events \
                            else trace_length
                        if ev < stop and ev < trace_length:
                            # Hit run up to (and including) the memory
                            # record — its issue cost and exposed cache
                            # latency are already in the prefix.
                            core_cycle += (cost_prefix[ev + 1]
                                           - cost_prefix[next_record])
                            next_record = ev + 1
                            address, is_write, needs_memory, wbs = \
                                mem_events[mem_ptr]
                            mem_ptr += 1
                            for writeback_address in wbs:
                                stat_writebacks += 1
                                if freelist:
                                    request = freelist_pop()
                                    request.core_id = core_id
                                    request.address = writeback_address
                                    request.is_write = True
                                    request.arrival_cycle = core_cycle
                                    request.request_id = next(request_ids)
                                else:
                                    request = MemoryRequest(
                                        core_id, writeback_address, True,
                                        core_cycle)
                                request.event_seq = seq
                                seq += 1
                                arrivals_append(request)
                            if not needs_memory:
                                continue

                            # Inline MSHRFile.allocate: the loop head
                            # guarantees a free entry.
                            block = address >> mshr_shift
                            merged_count = mshr_get(block)
                            if merged_count is None:
                                mshr_entries[block] = 1
                                mshrs.allocations += 1
                                new_entry = True
                            else:
                                mshr_entries[block] = merged_count + 1
                                mshrs.merges += 1
                                new_entry = False
                            if is_write:
                                stat_miss_stores += 1
                            else:
                                stat_miss_loads += 1
                            if new_entry:
                                if freelist:
                                    request = freelist_pop()
                                    request.core_id = core_id
                                    request.address = address
                                    request.is_write = False
                                    request.arrival_cycle = core_cycle
                                    request.request_id = next(request_ids)
                                else:
                                    request = MemoryRequest(core_id, address,
                                                            False, core_cycle)
                                request.event_seq = seq
                                seq += 1
                                arrivals_append(request)
                                outstanding_append(_OutstandingMiss(
                                    address, instr_prefix[next_record],
                                    not is_write, address & block_mask))
                            elif not is_write:
                                # The miss merged into an existing MSHR;
                                # the load still blocks the window on the
                                # earlier request's completion.
                                outstanding_append(_OutstandingMiss(
                                    address, instr_prefix[next_record],
                                    True, address & block_mask))
                            continue
                        # No executable memory record: pure hit run to
                        # the window-stall point or the end of the trace.
                        stop_record = stop if stop < trace_length \
                            else trace_length
                        core_cycle += (cost_prefix[stop_record]
                                       - cost_prefix[next_record])
                        next_record = stop_record
                        break
                    issued_instructions = instr_prefix[next_record]
                    run_stats.instructions = \
                        stats_instr_base + issued_instructions
                    run_stats.memory_instructions = \
                        stats_mem_base + next_record
                    run_stats.writebacks = stat_writebacks
                    run_stats.llc_miss_loads = stat_miss_loads
                    run_stats.llc_miss_stores = stat_miss_stores
                    if next_record >= trace_length and not outstanding:
                        # Inline TraceCore._retire.
                        finished = True
                        run_stats.finish_cycle = core_cycle
                continue
            else:
                # CONTROLLER_WAKE (the reference loop keeps superseded
                # wake events in its heap; the wakes list mirrors that,
                # swap-popping the consumed entry).
                last = len(wakes) - 1
                if wake_index != last:
                    wakes[wake_index] = wakes[last]
                del wakes[last]
                if scheduled_wake is not None and scheduled_wake <= cycle:
                    scheduled_wake = None
                next_due = None
                while wakeup_heap:
                    head = wakeup_heap[0]
                    if wakeup_get(head[1]) == head[0]:
                        next_due = head[0]
                        break
                    heappop(wakeup_heap)
                if next_due is None:
                    continue
                if next_due <= cycle:
                    # Inline ChannelController.wake (KEEP IN SYNC).
                    if len(wakeup_cycle) == 1:
                        bank_index, due_cycle = \
                            next(iter(wakeup_cycle.items()))
                        if due_cycle <= cycle:
                            del wakeup_cycle[bank_index]
                            due_banks = (bank_index,)
                    else:
                        due = [bank_index for bank_index, due_cycle
                               in wakeup_cycle.items() if due_cycle <= cycle]
                        if due:
                            for bank_index in due:
                                del wakeup_cycle[bank_index]
                            due_banks = due

            # ----------------------------------------------------------
            # Shared scheduling block: inline
            # ChannelController._try_schedule_bank for each due bank
            # (KEEP IN SYNC).
            # ----------------------------------------------------------
            if due_banks is not None:
                completed = []
                completed_append = completed.append
                for flat_bank in due_banks:
                    bank = banks[flat_bank]
                    ready_at = bank._busy_until
                    nca = bank._next_col_allowed
                    if nca > ready_at:
                        ready_at = nca
                    while True:
                        if ready_at > cycle:
                            # Inline _note_wakeup, incl. its no-pending
                            # guard.
                            if flat_bank not in reads_by_bank \
                                    and flat_bank not in writes_by_bank:
                                wakeup_cycle.pop(flat_bank, None)
                            else:
                                existing = wakeup_get(flat_bank)
                                if existing is None or ready_at < existing:
                                    wakeup_cycle[flat_bank] = ready_at
                                    heappush(wakeup_heap,
                                             (ready_at, flat_bank))
                            break
                        # Inline FRFCFSScheduler.pick + _first_ready
                        # (KEEP IN SYNC).  Class priority picks one
                        # candidate queue — reads before writes except
                        # during drain, writes opportunistically once
                        # the backlog reaches the low watermark — and
                        # the first-ready scan prefers the oldest
                        # open-row hit, comparing each candidate's
                        # *effective* row (inlined per mechanism; cache
                        # hits may be served from a redirected cache
                        # row, or from the source row while it is open
                        # and the copy is clean).  A queue is deleted
                        # when emptied, so a present queue is non-empty
                        # and the scan always selects.
                        bank_reads = reads_get(flat_bank)
                        bank_writes = writes_get(flat_bank)
                        if bank_writes is None:
                            if bank_reads is None:
                                break
                            candidates = bank_reads
                        elif bank_reads is None:
                            if not drain_mode and write_count < drain_low:
                                break
                            candidates = bank_writes
                        elif drain_mode:
                            candidates = bank_writes
                        else:
                            candidates = bank_reads
                        if len(candidates) == 1:
                            request = candidates[0]
                        else:
                            request = None
                            open_row = bank.open_row
                            if open_row is not None:
                                if scan_kind == 0:
                                    for cand in candidates:
                                        if cand.decoded.row == open_row:
                                            request = cand
                                            break
                                elif scan_kind == 1:
                                    # Inline FIGCache.effective_row.
                                    lookup_get = fig_lookup[flat_bank].get
                                    entries = fig_entries[flat_bank]
                                    row_ids = fig_row_ids[flat_bank]
                                    for cand in candidates:
                                        cand_decoded = cand.decoded
                                        cand_row = cand_decoded.row
                                        slot = lookup_get(
                                            (cand_row,
                                             cand_decoded.column_block
                                             // seg_blocks))
                                        if slot is None:
                                            effective = cand_row
                                        elif not entries[slot].dirty \
                                                and open_row == cand_row:
                                            effective = cand_row
                                        else:
                                            effective = row_ids[
                                                slot // segments_per_row]
                                        if effective == open_row:
                                            request = cand
                                            break
                                elif scan_kind == 2:
                                    # Inline
                                    # LISAVillaMechanism.effective_row
                                    # (a missing bank state means an
                                    # empty cache: every effective row
                                    # is the decoded row).
                                    state = lisa_banks_get(flat_bank)
                                    if state is None:
                                        for cand in candidates:
                                            if cand.decoded.row \
                                                    == open_row:
                                                request = cand
                                                break
                                    else:
                                        entries_get = state.entries.get
                                        for cand in candidates:
                                            cand_row = cand.decoded.row
                                            tag_entry = \
                                                entries_get(cand_row)
                                            if tag_entry is None:
                                                effective = cand_row
                                            elif not tag_entry.dirty \
                                                    and open_row \
                                                    == cand_row:
                                                effective = cand_row
                                            else:
                                                effective = \
                                                    lisa_fast_base \
                                                    + tag_entry.cache_slot
                                            if effective == open_row:
                                                request = cand
                                                break
                                else:
                                    for cand in candidates:
                                        if row_of(cand) == open_row:
                                            request = cand
                                            break
                            if request is None:
                                request = candidates[0]
                        # Inline _dequeue.
                        is_write = request.is_write
                        if is_write:
                            write_count -= 1
                            if drain_mode and write_count <= drain_low:
                                drain_mode = False
                            index = writes_by_bank
                        else:
                            read_count -= 1
                            index = reads_by_bank
                        queue = index[flat_bank]
                        if queue[0] is request:
                            queue.popleft()
                        else:
                            queue.remove(request)
                        if not queue:
                            del index[flat_bank]
                        # SERVICE copy B — KEEP IN SYNC with copy A
                        # above (copy B additionally handles writes:
                        # a write hit marks the tag entry dirty and is
                        # always served from the cache row).
                        decoded = request.decoded
                        insert_kind = 0
                        if service_kind == 0:
                            row = decoded.row
                            cache_hit = None
                            fused = True
                        elif service_kind == 1:
                            src_row = decoded.row
                            segment = decoded.column_block // seg_blocks
                            slot = fig_lookup[flat_bank].get(
                                (src_row, segment))
                            if slot is None:
                                # Fused miss (see copy A).
                                fig_stats.cache_lookups += 1
                                row = src_row
                                cache_hit = False
                                insert_kind = 1
                                fused = True
                            else:
                                fig_stats.cache_lookups += 1
                                fig_stats.cache_hits += 1
                                tag_entry = fig_entries[flat_bank][slot]
                                if tag_entry.benefit < fig_benefit_max:
                                    tag_entry.benefit += 1
                                tags = fig_tags[flat_bank]
                                tags._touch_counter += 1
                                tag_entry.last_touch = tags._touch_counter
                                if is_write:
                                    tag_entry.dirty = True
                                    row = fig_row_ids[flat_bank][
                                        slot // segments_per_row]
                                elif not tag_entry.dirty \
                                        and bank.open_row == src_row:
                                    row = src_row
                                else:
                                    row = fig_row_ids[flat_bank][
                                        slot // segments_per_row]
                                cache_hit = True
                                fused = True
                        elif service_kind == 2:
                            src_row = decoded.row
                            state = lisa_banks_get(flat_bank)
                            tag_entry = None if state is None \
                                else state.entries.get(src_row)
                            if tag_entry is None:
                                lisa_stats.cache_lookups += 1
                                row = src_row
                                cache_hit = False
                                insert_kind = 2
                                fused = True
                            else:
                                lisa_stats.cache_lookups += 1
                                lisa_stats.cache_hits += 1
                                if tag_entry.benefit < lisa_benefit_max:
                                    tag_entry.benefit += 1
                                if is_write:
                                    tag_entry.dirty = True
                                    row = lisa_fast_base \
                                        + tag_entry.cache_slot
                                elif not tag_entry.dirty \
                                        and bank.open_row == src_row:
                                    row = src_row
                                else:
                                    row = lisa_fast_base \
                                        + tag_entry.cache_slot
                                cache_hit = True
                                fused = True
                        else:
                            fused = False
                        if fused:
                            rank = rank_of[flat_bank]
                            if refresh_on \
                                    and cycle >= rank.next_refresh_due:
                                start = apply_refresh(cycle, flat_bank)
                            else:
                                start = cycle
                            served_fast = all_fast or row >= regular_rows
                            busy_until = bank._busy_until
                            if busy_until > start:
                                start = busy_until
                            open_row = bank.open_row
                            if open_row == row:
                                outcome = "hit"
                                c_row_hits += 1
                                col_cycle = bank._next_col_allowed
                                if start > col_cycle:
                                    col_cycle = start
                            else:
                                if open_row is None:
                                    outcome = "miss"
                                    c_row_misses += 1
                                    act_cycle = start
                                    naa = bank._next_act_allowed
                                    if act_cycle < naa:
                                        act_cycle = naa
                                else:
                                    outcome = "conflict"
                                    c_row_conflicts += 1
                                    pre_cycle = bank._next_pre_allowed
                                    if start > pre_cycle:
                                        pre_cycle = start
                                    act_cycle = pre_cycle + (
                                        trp_fast if all_fast
                                        or open_row >= regular_rows
                                        else trp_slow)
                                    c_precharges += 1
                                rrd_earliest = rank._last_activate + trrd
                                if rrd_earliest > act_cycle:
                                    act_cycle = rrd_earliest
                                recent = rank._recent_activates
                                if len(recent) == 4:
                                    faw_earliest = recent[0] + tfaw
                                    if faw_earliest > act_cycle:
                                        act_cycle = faw_earliest
                                if act_bg_pacing:
                                    bg_last = rank._bg_last_act
                                    bg_index = bank._bg_index
                                    bg_earliest = \
                                        bg_last[bg_index] + trrd_l
                                    if bg_earliest > act_cycle:
                                        act_cycle = bg_earliest
                                    bg_last[bg_index] = act_cycle
                                rank._last_activate = act_cycle
                                recent.append(act_cycle)
                                c_activates += 1
                                if served_fast:
                                    c_fast_activates += 1
                                if track_rows:
                                    counters.record_row_activation(
                                        bank._key, row)
                                bank.open_row = row
                                bank._last_act = act_cycle
                                trcd, tras = act_table[served_fast]
                                bank._next_pre_allowed = act_cycle + tras
                                col_cycle = act_cycle + trcd
                            if col_pacing:
                                bg_index = bank._bg_index
                                earliest_col = \
                                    rank._bg_last_col[bg_index] + tccd_l
                                cross = rank._last_col_cycle + tccd_s
                                if cross > earliest_col:
                                    earliest_col = cross
                                if earliest_col > col_cycle:
                                    col_cycle = earliest_col
                            data_latency, tbl, tccd, t_a, t_b = \
                                col_table[2 | served_fast] if is_write \
                                else col_table[served_fast]
                            burst_start = col_cycle + data_latency
                            bus_free_at = channel._bus_free_at
                            if burst_start < bus_free_at:
                                burst_start = bus_free_at
                                col_cycle = burst_start - data_latency
                            completion = burst_start + tbl
                            channel._bus_free_at = completion
                            if is_write:
                                c_writes += 1
                                if served_fast:
                                    c_fast_writes += 1
                                next_col = col_cycle + tccd
                                turnaround = completion + t_a  # tWTR
                                if turnaround > next_col:
                                    next_col = turnaround
                                next_pre = completion + t_b    # tWR
                            else:
                                c_reads += 1
                                if served_fast:
                                    c_fast_reads += 1
                                next_col = col_cycle + tccd
                                next_pre = col_cycle + t_a     # tRTP
                            ready_at = bank._next_col_allowed
                            if next_col > ready_at:
                                bank._next_col_allowed = ready_at = next_col
                            if next_pre > bank._next_pre_allowed:
                                bank._next_pre_allowed = next_pre
                            if col_cycle > bank._busy_until:
                                bank._busy_until = col_cycle
                            if col_pacing:
                                rank._last_col_cycle = col_cycle
                                rank._bg_last_col[bg_index] = col_cycle
                            request.in_dram_cache_hit = cache_hit
                            request.row_buffer_outcome = outcome
                            request.served_fast = served_fast
                            if insert_kind:
                                # Inline FIGCache.service /
                                # LISAVillaMechanism.service miss tails
                                # (KEEP IN SYNC with copy A).  The
                                # relocation work may push the bank's
                                # busy window past the access, so
                                # re-read its readiness (inline
                                # Bank.ready_for_next) for the wake
                                # scheduled below.
                                if insert_kind == 1:
                                    bank_cache = \
                                        fig_bank_caches[flat_bank]
                                    insertion = bank_cache.insertion
                                    if (bank_cache.excluded_subarray
                                            < 0
                                            or fig_may_cache(
                                                bank_cache, src_row)) \
                                            and (insertion
                                                 .always_inserts
                                                 or insertion
                                                 .should_insert(
                                                     src_row,
                                                     segment)):
                                        fig_insert(channel, completion,
                                                   flat_bank,
                                                   bank_cache, src_row,
                                                   segment,
                                                   dirty=is_write)
                                        busy = bank._busy_until
                                        nca = bank._next_col_allowed
                                        ready_at = busy \
                                            if busy > nca else nca
                                else:
                                    if state is None:
                                        state = lisa_bank_state(
                                            flat_bank)
                                    lisa_insert(channel, completion,
                                                flat_bank, state,
                                                src_row,
                                                dirty=is_write)
                                    busy = bank._busy_until
                                    nca = bank._next_col_allowed
                                    ready_at = busy \
                                        if busy > nca else nca
                        else:
                            result = mech_service(channel, cycle,
                                                  decoded,
                                                  flat_bank, is_write)
                            completion = result.completion_cycle
                            request.in_dram_cache_hit = \
                                result.in_dram_cache_hit
                            request.row_buffer_outcome = \
                                result.row_buffer_outcome
                            request.served_fast = result.served_fast
                            ready_at = result.bank_busy_until
                        request.issue_cycle = cycle
                        request.completion_cycle = completion
                        latency = completion - request.arrival_cycle
                        if is_write:
                            completed_writes += 1
                            write_latencies[latency] = \
                                write_lat_get(latency, 0) + 1
                        else:
                            completed_reads += 1
                            read_latencies[latency] = \
                                read_lat_get(latency, 0) + 1
                        completed_append(request)

            if completed:
                # Inline completion delivery (see Simulator._run) plus
                # request pooling: reads are recycled right after their
                # notify, writes immediately — nothing retains them.
                for request in completed:
                    if not request.is_write:
                        completion_cycle = request.completion_cycle
                        # Inline TraceCore.notify_completion, copy B
                        # (KEEP IN SYNC with copy A in the arrival fast
                        # path and with TraceCore).
                        address = request.address
                        block = address & block_mask
                        kept = [miss for miss in outstanding
                                if miss.block != block]
                        if len(kept) != len(outstanding):
                            oldest = outstanding[0]
                            stalled_before = \
                                len(mshr_entries) >= mshr_capacity \
                                or (oldest.blocks_window
                                    and (issued_instructions
                                         - oldest.instruction_position)
                                    >= window_size)
                            outstanding[:] = kept
                            del mshr_entries[address >> mshr_shift]
                            if kept:
                                oldest = kept[0]
                                can_progress = not (
                                    oldest.blocks_window
                                    and (issued_instructions
                                         - oldest.instruction_position)
                                    >= window_size)
                            else:
                                can_progress = True
                            if can_progress \
                                    and completion_cycle > core_cycle:
                                stall = completion_cycle - core_cycle
                                if stalled_before \
                                        and len(mshr_entries) + 1 \
                                        >= mshr_capacity:
                                    run_stats.stall_cycles_mshr += stall
                                else:
                                    run_stats.stall_cycles_window += stall
                                core_cycle = completion_cycle
                            if next_record >= trace_length \
                                    and not outstanding:
                                # Inline TraceCore._retire.
                                finished = True
                                run_stats.finish_cycle = core_cycle
                            if can_progress and not finished:
                                runs_append((completion_cycle, seq))
                                seq += 1
                    freelist_append(request)

            # Trailing wake scheduling (skipped after CORE_RUN, exactly
            # like the reference loop's `continue`).
            wake_at = None
            while wakeup_heap:
                head = wakeup_heap[0]
                if wakeup_get(head[1]) == head[0]:
                    wake_at = head[0]
                    break
                heappop(wakeup_heap)
            if wake_at is not None:
                if wake_at < cycle:
                    wake_at = cycle
                if scheduled_wake is None or scheduled_wake > wake_at:
                    scheduled_wake = wake_at
                    wakes_append((wake_at, seq))
                    seq += 1

        counters.row_hits += c_row_hits
        counters.row_misses += c_row_misses
        counters.row_conflicts += c_row_conflicts
        counters.precharges += c_precharges
        counters.activates += c_activates
        counters.fast_activates += c_fast_activates
        counters.reads += c_reads
        counters.fast_reads += c_fast_reads
        counters.writes += c_writes
        counters.fast_writes += c_fast_writes
        c_row_hits = c_row_misses = c_row_conflicts = 0
        c_precharges = c_activates = c_fast_activates = 0
        c_reads = c_fast_reads = c_writes = c_fast_writes = 0
        cc._read_count = read_count
        cc._write_count = write_count
        cc._drain_mode = drain_mode
        cc.completed_reads = completed_reads
        cc.completed_writes = completed_writes
        core._next_record = next_record
        core._core_cycle = core_cycle
        core._issued_instructions = issued_instructions
        core._finished = finished
        if __debug__:
            current_heap, current_live = cc.wakeup_view()
            assert wakeup_heap is current_heap \
                and wakeup_cycle is current_live, (
                    "ChannelController rebound its wake-up structures "
                    "mid-run; the hoisted snapshot went stale "
                    "(see ChannelController.wakeup_view)")
        return self._finish(cycle, processed)

    # ------------------------------------------------------------------
    # Fused multi-channel loop: calendar-queue scheduling, batch-stepped
    # cores, and the single-channel loop's inlined controller/DRAM
    # service path generalised to N channels.
    # ------------------------------------------------------------------
    def _run_multi(self) -> int:
        """Batch-stepped N-channel x M-core engine (bit-identical).

        Two structural changes over :meth:`_run_multi_generic`:

        * **Calendar queue.**  The global event heap is replaced by a
          bucketed calendar queue: events land in per-window buckets
          (``cycle >> _BUCKET_SHIFT``), the earliest bucket is sorted
          once and drained by pointer, and same-window pushes insert in
          order past the drain pointer (every push is for ``>= now``, so
          a new event always sorts after the pointer).  ``(cycle, seq)``
          with the reference loop's unique, monotone ``seq`` decides the
          order completely, so the drain sequence is exactly the heap's.

        * **Fused request path.**  Address decode, controller enqueue,
          the FR-FCFS pick, the flat-table timing chain, and the
          FIGCache/LISA-VILLA probe-and-miss resolution are the
          single-channel loop's inlined blocks, indexed per channel.
          KEEP every block IN SYNC with its copy in ``_run_single`` and
          with the sources those name.  Queue occupancy, drain mode, and
          completion counters are mutated directly on the controller (no
          local shadowing), so observers need no synchronisation points.

        Traced runs and controller shapes the fused body does not
        replicate (unknown mechanism subclasses, mixed timing tables,
        non-uniform drain watermarks) fall back to the generic loop —
        bit-identical by the backend parity contract.
        """
        from repro.baselines.lisa_villa import LISAVillaMechanism
        from repro.controller.channel_controller import ChannelController
        from repro.core.figcache import FIGCache
        from repro.dram.address import DecodedAddress

        controller = self._controller
        ccs = controller.channel_controllers
        cores = self._cores
        for cc in ccs:
            # Subclassed controllers (tests, instrumentation) keep the
            # generic loop, which drives them through their real methods.
            if cc.tracer is not None or type(cc) is not ChannelController:
                return self._run_multi_generic()
        channels_l = [cc.channel for cc in ccs]
        n_channels = len(ccs)

        # One set of hoisted timing scalars serves every channel: all
        # channels of a device share one DRAMConfig, so the content-
        # keyed table cache hands back one ChannelTables object.  Guard
        # by identity and fall back if a future device shape breaks it.
        tables = tables_for_channel(channels_l[0])
        for ch in channels_l[1:]:
            if tables_for_channel(ch) is not tables:
                return self._run_multi_generic()
        col_table = tables.col
        act_table = tables.act
        trp_slow, trp_fast = tables.trp
        trrd = tables.trrd
        tfaw = tables.tfaw
        col_pacing = tables.col_pacing
        tccd_l = tables.tccd_l
        tccd_s = tables.tccd_s
        act_bg_pacing = tables.act_bg_pacing
        trrd_l = tables.trrd_l
        all_fast = tables.all_fast
        regular_rows = tables.regular_rows

        # Mechanism specialisation (see _run_single): uniform across
        # channels or fall back.  Unknown mechanism subclasses take the
        # generic loop wholesale — every registered configuration is
        # direct, FIGCache, or LISA-VILLA.
        mechanisms = [cc.mechanism for cc in ccs]
        if all(cc._direct_access for cc in ccs):
            service_kind = 0
        elif any(cc._direct_access for cc in ccs):
            return self._run_multi_generic()
        elif all(type(mechanism) is FIGCache for mechanism in mechanisms):
            service_kind = 1
        elif all(type(mechanism) is LISAVillaMechanism
                 for mechanism in mechanisms):
            service_kind = 2
        else:
            return self._run_multi_generic()
        row_of_l = [cc._row_of for cc in ccs]
        if all(row_of is None for row_of in row_of_l):
            scan_kind = 0
        elif any(row_of is None for row_of in row_of_l):
            return self._run_multi_generic()
        elif service_kind in (1, 2):
            scan_kind = service_kind
        else:
            scan_kind = 3
        drain_high = ccs[0]._drain_high
        drain_low = ccs[0]._drain_low
        for cc in ccs:
            if cc._drain_high != drain_high or cc._drain_low != drain_low:
                return self._run_multi_generic()

        fig_stats_l = fig_lookup_l = fig_entries_l = fig_tags_l = None
        fig_row_ids_l = fig_bank_caches_l = None
        fig_may_cache_l = fig_insert_l = None
        seg_blocks = segments_per_row = fig_benefit_max = 0
        lisa_stats_l = lisa_banks_get_l = None
        lisa_bank_state_l = lisa_insert_l = None
        lisa_benefit_max = lisa_fast_base = 0
        if service_kind == 1:
            seg_blocks = mechanisms[0]._segment_blocks
            if any(mechanism._segment_blocks != seg_blocks
                   for mechanism in mechanisms):
                return self._run_multi_generic()
            fig_stats_l = [mechanism.stats for mechanism in mechanisms]
            fig_bank_caches_l = [
                [mechanism._bank_cache(index)
                 for index in range(len(channel._banks))]
                for mechanism, channel in zip(mechanisms, channels_l)]
            fig_lookup_l = [[cache.tags._lookup for cache in caches]
                            for caches in fig_bank_caches_l]
            fig_entries_l = [[cache.tags._entries for cache in caches]
                             for caches in fig_bank_caches_l]
            fig_tags_l = [[cache.tags for cache in caches]
                          for caches in fig_bank_caches_l]
            fig_row_ids_l = [[cache.cache_row_ids for cache in caches]
                             for caches in fig_bank_caches_l]
            segments_per_row = \
                fig_bank_caches_l[0][0].tags._segments_per_row
            fig_benefit_max = fig_bank_caches_l[0][0].tags._benefit_max
            for caches in fig_bank_caches_l:
                if caches[0].tags._segments_per_row != segments_per_row \
                        or caches[0].tags._benefit_max != fig_benefit_max:
                    return self._run_multi_generic()
            fig_may_cache_l = [mechanism._may_cache
                               for mechanism in mechanisms]
            fig_insert_l = [mechanism._insert_segment
                            for mechanism in mechanisms]
        elif service_kind == 2:
            lisa_benefit_max = mechanisms[0]._benefit_max
            lisa_fast_base = mechanisms[0]._fast_row_base
            if any(mechanism._benefit_max != lisa_benefit_max
                   or mechanism._fast_row_base != lisa_fast_base
                   for mechanism in mechanisms):
                return self._run_multi_generic()
            lisa_stats_l = [mechanism.stats for mechanism in mechanisms]
            lisa_banks_get_l = [mechanism._banks.get
                                for mechanism in mechanisms]
            lisa_bank_state_l = [mechanism._bank_state
                                 for mechanism in mechanisms]
            lisa_insert_l = [mechanism._insert_row
                             for mechanism in mechanisms]

        # Per-channel mechanism handles folded into one tuple each,
        # unpacked once per arrival-fast-path service or once per due
        # group in the scheduling block: like ``chan_ctx`` below, a
        # single UNPACK_SEQUENCE replaces the ``_l[ci]`` subscripts
        # the fused FIG/LISA branches would otherwise repeat.
        if service_kind == 1:
            mech_ctx = [
                (fig_stats_l[ci], fig_lookup_l[ci], fig_entries_l[ci],
                 fig_tags_l[ci], fig_row_ids_l[ci],
                 fig_bank_caches_l[ci], fig_may_cache_l[ci],
                 fig_insert_l[ci])
                for ci in range(n_channels)]
        elif service_kind == 2:
            mech_ctx = [
                (lisa_stats_l[ci], lisa_banks_get_l[ci],
                 lisa_bank_state_l[ci], lisa_insert_l[ci])
                for ci in range(n_channels)]
        else:
            mech_ctx = None

        # Per-channel structure snapshots, indexed by the decoded
        # channel number (ccs order == MemoryController._controllers_tuple
        # order, which the inlined controller fan-out below relies on).
        banks_l = [channel._banks for channel in channels_l]
        rank_of_l = [channel._rank_of for channel in channels_l]
        apply_refresh_l = [channel._apply_refresh for channel in channels_l]
        refresh_on_l = [rank_of[0].refresh_enabled if rank_of else False
                        for rank_of in rank_of_l]
        counters_l = [channel.counters for channel in channels_l]
        track_rows_l = [counters.track_row_activations
                        for counters in counters_l]
        reads_l = [cc._reads_by_bank for cc in ccs]
        writes_l = [cc._writes_by_bank for cc in ccs]
        wakeup_views = [cc.wakeup_view() for cc in ccs]
        wakeup_heap_l = [view[0] for view in wakeup_views]
        wakeup_cycle_l = [view[1] for view in wakeup_views]
        # (heap, live-map .get) pairs for the per-event wake scans —
        # prebound so the scans allocate nothing.
        wake_scan = [(heap, live.get)
                     for heap, live in zip(wakeup_heap_l, wakeup_cycle_l)]
        read_lat_l = [cc.read_latencies for cc in ccs]
        write_lat_l = [cc.write_latencies for cc in ccs]
        # One tuple per channel with every hoisted handle the service
        # path touches: a single UNPACK_SEQUENCE is much cheaper than
        # the ~17 list subscripts it replaces, and services run it once
        # per event (arrival fast path) or once per due group.
        chan_ctx = [
            (ccs[ci], channels_l[ci], banks_l[ci], rank_of_l[ci],
             refresh_on_l[ci], apply_refresh_l[ci], counters_l[ci],
             track_rows_l[ci], reads_l[ci], reads_l[ci].get,
             writes_l[ci], writes_l[ci].get, wakeup_heap_l[ci],
             wakeup_cycle_l[ci], wakeup_cycle_l[ci].get,
             read_lat_l[ci], write_lat_l[ci])
            for ci in range(n_channels)]

        # Address decode, inlined for route-cache misses (KEEP IN SYNC
        # with AddressMapper.decode / AddressMapper.flat_bank and
        # MemoryController.route).
        mapper = controller._device.mapper
        offset_bits = mapper._offset_bits
        column_bits = mapper._column_bits
        column_mask = (1 << column_bits) - 1
        channel_bits = mapper._channel_bits
        channel_mask = (1 << channel_bits) - 1
        bank_bits = mapper._bank_bits
        bank_mask = (1 << bank_bits) - 1
        bankgroup_bits = mapper._bankgroup_bits
        bankgroup_mask = (1 << bankgroup_bits) - 1
        rank_bits = mapper._rank_bits
        rank_mask = (1 << rank_bits) - 1
        rows_per_bank = mapper._rows
        banks_per_rank = mapper._banks_per_rank
        banks_per_bankgroup = mapper._banks_per_bankgroup
        route_cache = controller._route_cache
        route_cache_get = route_cache.get
        decoded_address = DecodedAddress

        max_cycles = self._limits.max_cycles
        max_events = self._limits.max_events
        telemetry = self._telemetry
        epoch_end = telemetry.next_epoch if telemetry is not None \
            else max_cycles + 1

        request_ids = _request_ids
        freelist: list[MemoryRequest] = []
        freelist_pop = freelist.pop
        freelist_append = freelist.append

        # core_id doubles as the index into ``cores`` (see the generic
        # loop's ``cores[request.core_id]``), so plans live in a list.
        core_plans = [_plan_for_core(core) for core in cores]

        # Calendar queue.  Buckets hold unsorted (cycle, seq, kind,
        # payload) tuples per _BUCKET_WIDTH-cycle window; the earliest
        # bucket is sorted once and drained by pointer.  seq is unique
        # and monotone, so tuple comparison never reaches the payload.
        seq = 0
        seed: list = []
        for core in cores:
            seed.append((0, seq, _CORE_RUN, core))
            seq += 1
        buckets: dict[int, list] = {0: seed}
        buckets_get = buckets.get
        cur_key = -1
        cur_list: list = []
        cur_ptr = 0
        cur_len = 0
        scheduled_wake: int | None = None
        processed = self.processed_events
        cycle = 0
        while True:
            if cur_ptr >= cur_len:
                if not buckets:
                    break
                cur_key = min(buckets)
                cur_list = buckets.pop(cur_key)
                cur_list.sort()
                cur_ptr = 0
                cur_len = len(cur_list)
                continue
            cycle, _, kind, payload = cur_list[cur_ptr]
            cur_ptr += 1
            if cycle > max_cycles or processed >= max_events:
                self._now = cycle
                self.processed_events = processed
                self._raise_limit(cycle)
            if cycle >= epoch_end:
                epoch_end = telemetry.advance(cycle)
            processed += 1

            #: (channel index, due banks) groups for the shared
            #: scheduling block, and the requests this event completed.
            due_work = None
            completed = None
            #: Did this event note a new (or sooner) bank wake-up?  Only
            #: then — or after a WAKE event, which clears the
            #: ``scheduled_wake`` latch — can the earliest pending wake
            #: differ from what is already scheduled, so the trailing
            #: wake scan is skipped otherwise (removals only ever move
            #: the earliest wake later, which needs no new event).
            wake_pushed = False

            if kind == _REQUEST_ARRIVAL:
                # Inline MemoryController.enqueue (route probe + decode)
                # + ChannelController.enqueue (KEEP IN SYNC).
                request = payload
                address = request.address
                route_entry = route_cache_get(address)
                if route_entry is None:
                    bits = address >> offset_bits
                    column = bits & column_mask
                    bits >>= column_bits
                    ci = (bits & channel_mask) if channel_bits else 0
                    bits >>= channel_bits
                    bank_index = bits & bank_mask
                    bits >>= bank_bits
                    bankgroup = bits & bankgroup_mask
                    bits >>= bankgroup_bits
                    rank_index = (bits & rank_mask) if rank_bits else 0
                    bits >>= rank_bits
                    decoded = decoded_address(ci, rank_index, bankgroup,
                                              bank_index,
                                              bits % rows_per_bank, column)
                    flat_bank = (rank_index * banks_per_rank
                                 + bankgroup * banks_per_bankgroup
                                 + bank_index)
                    cc = ccs[ci]
                    route_cache[address] = (decoded, flat_bank, cc)
                    request.decoded = decoded
                    request.flat_bank = flat_bank
                else:
                    decoded = route_entry[0]
                    request.decoded = decoded
                    flat_bank = request.flat_bank = route_entry[1]
                    cc = route_entry[2]
                    ci = decoded.channel
                reads_by_bank = reads_l[ci]
                writes_by_bank = writes_l[ci]
                handled = False
                if request.is_write:
                    write_count = cc._write_count = cc._write_count + 1
                    if not cc._drain_mode and write_count >= drain_high:
                        cc._drain_mode = True
                    index = writes_by_bank
                else:
                    index = reads_by_bank
                    # Enqueue fast path: a sole read to a free bank is
                    # picked unconditionally — service it immediately.
                    if flat_bank not in reads_by_bank \
                            and flat_bank not in writes_by_bank:
                        banks = banks_l[ci]
                        bank = banks[flat_bank]
                        busy_until = bank._busy_until
                        nca = bank._next_col_allowed
                        ready_at = busy_until if busy_until > nca else nca
                        if ready_at <= cycle:
                            # SERVICE copy A (read fast path) — KEEP IN
                            # SYNC with _run_single copy A, with copy B
                            # below, and with the sources those name.
                            (cc, channel, banks, rank_of, refresh_on,
                             apply_refresh, counters, track_rows,
                             reads_by_bank, reads_get, writes_by_bank,
                             writes_get, wakeup_heap, wakeup_cycle_map,
                             wakeup_get, read_latencies,
                             write_latencies) = chan_ctx[ci]
                            insert_kind = 0
                            if service_kind == 0:
                                row = decoded.row
                                cache_hit = None
                            elif service_kind == 1:
                                (fig_stats, fig_lookup, fig_entries,
                                 fig_tags, fig_row_ids, fig_caches,
                                 fig_may_cache,
                                 fig_insert) = mech_ctx[ci]
                                src_row = decoded.row
                                segment = (decoded.column_block
                                           // seg_blocks)
                                slot = fig_lookup[flat_bank].get(
                                    (src_row, segment))
                                if slot is None:
                                    # Fused miss: serve the source row
                                    # through the timing block below;
                                    # the insertion tail runs after it.
                                    fig_stats.cache_lookups += 1
                                    row = src_row
                                    cache_hit = False
                                    insert_kind = 1
                                else:
                                    fig_stats.cache_lookups += 1
                                    fig_stats.cache_hits += 1
                                    tag_entry = \
                                        fig_entries[flat_bank][slot]
                                    if tag_entry.benefit < fig_benefit_max:
                                        tag_entry.benefit += 1
                                    tags = fig_tags[flat_bank]
                                    tags._touch_counter += 1
                                    tag_entry.last_touch = \
                                        tags._touch_counter
                                    if not tag_entry.dirty \
                                            and bank.open_row == src_row:
                                        row = src_row
                                    else:
                                        row = fig_row_ids[flat_bank][
                                            slot // segments_per_row]
                                    cache_hit = True
                            else:
                                (lisa_stats, lisa_banks_get,
                                 lisa_bank_state,
                                 lisa_insert) = mech_ctx[ci]
                                src_row = decoded.row
                                state = lisa_banks_get(flat_bank)
                                tag_entry = None if state is None \
                                    else state.entries.get(src_row)
                                if tag_entry is None:
                                    lisa_stats.cache_lookups += 1
                                    row = src_row
                                    cache_hit = False
                                    insert_kind = 2
                                else:
                                    lisa_stats.cache_lookups += 1
                                    lisa_stats.cache_hits += 1
                                    if tag_entry.benefit \
                                            < lisa_benefit_max:
                                        tag_entry.benefit += 1
                                    if not tag_entry.dirty \
                                            and bank.open_row == src_row:
                                        row = src_row
                                    else:
                                        row = lisa_fast_base \
                                            + tag_entry.cache_slot
                                    cache_hit = True
                            rank = rank_of[flat_bank]
                            if refresh_on \
                                    and cycle >= rank.next_refresh_due:
                                start = apply_refresh(cycle, flat_bank)
                            else:
                                start = cycle
                            served_fast = all_fast \
                                or row >= regular_rows
                            busy_until = bank._busy_until
                            if busy_until > start:
                                start = busy_until
                            open_row = bank.open_row
                            if open_row == row:
                                outcome = "hit"
                                counters.row_hits += 1
                                col_cycle = bank._next_col_allowed
                                if start > col_cycle:
                                    col_cycle = start
                            else:
                                if open_row is None:
                                    outcome = "miss"
                                    counters.row_misses += 1
                                    act_cycle = start
                                    naa = bank._next_act_allowed
                                    if act_cycle < naa:
                                        act_cycle = naa
                                else:
                                    outcome = "conflict"
                                    counters.row_conflicts += 1
                                    pre_cycle = bank._next_pre_allowed
                                    if start > pre_cycle:
                                        pre_cycle = start
                                    act_cycle = pre_cycle + (
                                        trp_fast if all_fast
                                        or open_row >= regular_rows
                                        else trp_slow)
                                    counters.precharges += 1
                                # Inline Bank._activate with rank
                                # tRRD/tFAW pacing and the bank-group
                                # tRRD_L split.
                                rrd_earliest = \
                                    rank._last_activate + trrd
                                if rrd_earliest > act_cycle:
                                    act_cycle = rrd_earliest
                                recent = rank._recent_activates
                                if len(recent) == 4:
                                    faw_earliest = recent[0] + tfaw
                                    if faw_earliest > act_cycle:
                                        act_cycle = faw_earliest
                                if act_bg_pacing:
                                    bg_last = rank._bg_last_act
                                    bg_index = bank._bg_index
                                    bg_earliest = \
                                        bg_last[bg_index] + trrd_l
                                    if bg_earliest > act_cycle:
                                        act_cycle = bg_earliest
                                    bg_last[bg_index] = act_cycle
                                rank._last_activate = act_cycle
                                recent.append(act_cycle)
                                counters.activates += 1
                                if served_fast:
                                    counters.fast_activates += 1
                                if track_rows:
                                    counters.record_row_activation(
                                        bank._key, row)
                                bank.open_row = row
                                bank._last_act = act_cycle
                                trcd, tras = act_table[served_fast]
                                bank._next_pre_allowed = \
                                    act_cycle + tras
                                col_cycle = act_cycle + trcd
                            if col_pacing:
                                bg_index = bank._bg_index
                                earliest_col = \
                                    rank._bg_last_col[bg_index] + tccd_l
                                cross = rank._last_col_cycle + tccd_s
                                if cross > earliest_col:
                                    earliest_col = cross
                                if earliest_col > col_cycle:
                                    col_cycle = earliest_col
                            data_latency, tbl, tccd, t_a, t_b = \
                                col_table[served_fast]
                            burst_start = col_cycle + data_latency
                            bus_free_at = channel._bus_free_at
                            if burst_start < bus_free_at:
                                burst_start = bus_free_at
                                col_cycle = burst_start - data_latency
                            completion = burst_start + tbl
                            channel._bus_free_at = completion
                            counters.reads += 1
                            if served_fast:
                                counters.fast_reads += 1
                            next_col = col_cycle + tccd
                            next_pre = col_cycle + t_a     # tRTP
                            if next_col > bank._next_col_allowed:
                                bank._next_col_allowed = next_col
                            if next_pre > bank._next_pre_allowed:
                                bank._next_pre_allowed = next_pre
                            if col_cycle > bank._busy_until:
                                bank._busy_until = col_cycle
                            if col_pacing:
                                rank._last_col_cycle = col_cycle
                                rank._bg_last_col[bg_index] = col_cycle
                            request.in_dram_cache_hit = cache_hit
                            request.row_buffer_outcome = outcome
                            request.served_fast = served_fast
                            if insert_kind:
                                # Inline FIGCache.service /
                                # LISAVillaMechanism.service miss tails
                                # (KEEP IN SYNC): insertion starts when
                                # the access data is back.  This path
                                # never schedules a bank wake, so the
                                # pushed-out bank readiness needs no
                                # re-read.
                                if insert_kind == 1:
                                    bank_cache = fig_caches[flat_bank]
                                    insertion = bank_cache.insertion
                                    if (bank_cache.excluded_subarray < 0
                                            or fig_may_cache(
                                                bank_cache, src_row)) \
                                            and (insertion.always_inserts
                                                 or insertion
                                                 .should_insert(
                                                     src_row, segment)):
                                        fig_insert(
                                            channel, completion,
                                            flat_bank, bank_cache,
                                            src_row, segment,
                                            dirty=False)
                                else:
                                    if state is None:
                                        state = lisa_bank_state(
                                            flat_bank)
                                    lisa_insert(channel,
                                                completion,
                                                flat_bank, state,
                                                src_row,
                                                dirty=False)
                            request.issue_cycle = cycle
                            request.completion_cycle = completion
                            cc.completed_reads += 1
                            latency = completion - request.arrival_cycle
                            read_latencies[latency] = \
                                read_latencies.get(latency, 0) + 1
                            # Completion delivery (see Simulator._run):
                            # the fast path completes exactly this one
                            # read.  Inline TraceCore.notify_completion
                            # (KEEP IN SYNC with it and with the batch
                            # delivery loop below).
                            core = cores[request.core_id]
                            block_mask = core._block_mask
                            block = address & block_mask
                            outstanding = core._outstanding
                            kept = [miss for miss in outstanding
                                    if (miss.address & block_mask)
                                    != block]
                            if len(kept) != len(outstanding):
                                mshr_entries = core._mshr_entries
                                mshr_capacity = core._mshr_capacity
                                window_size = core._window_size
                                issued = core._issued_instructions
                                oldest = outstanding[0]
                                stalled_before = \
                                    len(mshr_entries) >= mshr_capacity \
                                    or (oldest.blocks_window
                                        and (issued - oldest
                                             .instruction_position)
                                        >= window_size)
                                outstanding[:] = kept
                                del mshr_entries[
                                    address >> core._mshr_shift]
                                if kept:
                                    oldest = kept[0]
                                    can_progress = not (
                                        oldest.blocks_window
                                        and (issued - oldest
                                             .instruction_position)
                                        >= window_size)
                                else:
                                    can_progress = True
                                if can_progress \
                                        and completion \
                                        > core._core_cycle:
                                    stall = completion \
                                        - core._core_cycle
                                    if stalled_before \
                                            and len(mshr_entries) + 1 \
                                            >= mshr_capacity:
                                        core.stats.stall_cycles_mshr \
                                            += stall
                                    else:
                                        core.stats.stall_cycles_window \
                                            += stall
                                    core._core_cycle = completion
                                if not kept and core._next_record \
                                        >= core._trace_length:
                                    # Inline _retire.
                                    core._finished = True
                                    core.stats.finish_cycle = \
                                        core._core_cycle
                                if can_progress \
                                        and not core._finished:
                                    event = (completion, seq,
                                             _CORE_RUN, core)
                                    seq += 1
                                    bucket_key = \
                                        completion >> _BUCKET_SHIFT
                                    if bucket_key == cur_key:
                                        insort(cur_list, event,
                                               cur_ptr)
                                        cur_len += 1
                                    else:
                                        bucket = \
                                            buckets_get(bucket_key)
                                        if bucket is None:
                                            buckets[bucket_key] = \
                                                [event]
                                        else:
                                            bucket.append(event)
                            freelist_append(request)
                            handled = True
                    if not handled:
                        cc._read_count += 1
                if not handled:
                    # Queue insert in FCFS (request_id) order.
                    queue = index.get(flat_bank)
                    if queue is None:
                        index[flat_bank] = deque((request,))
                    elif queue[-1].request_id < request.request_id:
                        queue.append(request)
                    else:
                        # Rare out-of-order arrival: restore FCFS order.
                        position = len(queue) - 1
                        request_id = request.request_id
                        while position > 0 \
                                and queue[position - 1].request_id \
                                > request_id:
                            position -= 1
                        queue.insert(position, request)
                    bank = banks_l[ci][flat_bank]
                    busy_until = bank._busy_until
                    nca = bank._next_col_allowed
                    ready_at = busy_until if busy_until > nca else nca
                    if ready_at > cycle:
                        # Busy bank: note the wake-up (pending work is
                        # guaranteed — the request was just queued).
                        wakeup_cycle_map = wakeup_cycle_l[ci]
                        existing = wakeup_cycle_map.get(flat_bank)
                        if existing is None or ready_at < existing:
                            wakeup_cycle_map[flat_bank] = ready_at
                            heappush(wakeup_heap_l[ci],
                                     (ready_at, flat_bank))
                            wake_pushed = True
                    else:
                        due_work = ((ci, (flat_bank,)),)
            elif kind == _CORE_RUN:
                # Inline _step_core (KEEP IN SYNC with it and with
                # TraceCore.run_requests): advance the core through its
                # precompiled plan, pushing each issued request as an
                # arrival event directly — no intermediate list.
                core = payload
                if core._finished:
                    continue
                (cost_prefix, instr_prefix, mem_idx, mem_events,
                 stats_instr_base, stats_mem_base) = \
                    core_plans[core.core_id]
                trace_length = len(cost_prefix) - 1
                trace_n1 = trace_length + 1
                next_record = core._next_record
                core_cycle = core._core_cycle
                if cycle > core_cycle:
                    core_cycle = cycle
                outstanding = core._outstanding
                outstanding_append = outstanding.append
                mshr_entries = core._mshr_entries
                mshr_capacity = core._mshr_capacity
                mshr_get = mshr_entries.get
                mshr_shift = core._mshr_shift
                block_mask = core._block_mask
                mshrs = core.mshrs
                window_size = core._window_size
                run_stats = core.stats
                core_id = core.core_id
                n_mem_events = len(mem_idx)
                mem_ptr = bisect_left(mem_idx, next_record)
                new_writebacks = 0
                new_miss_loads = 0
                new_miss_stores = 0
                while next_record < trace_length:
                    if len(mshr_entries) >= mshr_capacity:
                        break
                    if outstanding:
                        oldest = outstanding[0]
                        if oldest.blocks_window:
                            window_limit = oldest.instruction_position \
                                + window_size
                            if instr_prefix[next_record] >= window_limit:
                                break
                            stop = bisect_left(instr_prefix, window_limit,
                                               next_record + 1)
                        else:
                            stop = trace_n1
                    else:
                        stop = trace_n1
                    ev = mem_idx[mem_ptr] if mem_ptr < n_mem_events \
                        else trace_length
                    if ev < stop and ev < trace_length:
                        # Hit run up to (and including) the memory
                        # record — issue cost and exposed cache latency
                        # come from the prefix arrays.
                        core_cycle += cost_prefix[ev + 1] \
                            - cost_prefix[next_record]
                        next_record = ev + 1
                        address, is_write, needs_memory, wbs = \
                            mem_events[mem_ptr]
                        mem_ptr += 1
                        for writeback_address in wbs:
                            new_writebacks += 1
                            if freelist:
                                request = freelist_pop()
                                request.core_id = core_id
                                request.address = writeback_address
                                request.is_write = True
                                request.arrival_cycle = core_cycle
                                request.request_id = next(request_ids)
                            else:
                                request = MemoryRequest(
                                    core_id, writeback_address, True,
                                    core_cycle)
                            event = (core_cycle, seq,
                                     _REQUEST_ARRIVAL, request)
                            seq += 1
                            bucket_key = core_cycle >> _BUCKET_SHIFT
                            if bucket_key == cur_key:
                                insort(cur_list, event, cur_ptr)
                                cur_len += 1
                            else:
                                bucket = buckets_get(bucket_key)
                                if bucket is None:
                                    buckets[bucket_key] = [event]
                                else:
                                    bucket.append(event)
                        if not needs_memory:
                            continue
                        # Inline MSHRFile.allocate: the loop head
                        # guarantees a free entry.
                        block = address >> mshr_shift
                        merged_count = mshr_get(block)
                        if merged_count is None:
                            mshr_entries[block] = 1
                            mshrs.allocations += 1
                            new_entry = True
                        else:
                            mshr_entries[block] = merged_count + 1
                            mshrs.merges += 1
                            new_entry = False
                        if is_write:
                            new_miss_stores += 1
                        else:
                            new_miss_loads += 1
                        if new_entry:
                            if freelist:
                                request = freelist_pop()
                                request.core_id = core_id
                                request.address = address
                                request.is_write = False
                                request.arrival_cycle = core_cycle
                                request.request_id = next(request_ids)
                            else:
                                request = MemoryRequest(
                                    core_id, address, False, core_cycle)
                            event = (core_cycle, seq,
                                     _REQUEST_ARRIVAL, request)
                            seq += 1
                            bucket_key = core_cycle >> _BUCKET_SHIFT
                            if bucket_key == cur_key:
                                insort(cur_list, event, cur_ptr)
                                cur_len += 1
                            else:
                                bucket = buckets_get(bucket_key)
                                if bucket is None:
                                    buckets[bucket_key] = [event]
                                else:
                                    bucket.append(event)
                            outstanding_append(_OutstandingMiss(
                                address, instr_prefix[next_record],
                                not is_write, address & block_mask))
                        elif not is_write:
                            # The miss merged into an existing MSHR; the
                            # load still blocks the window on the earlier
                            # request's completion.
                            outstanding_append(_OutstandingMiss(
                                address, instr_prefix[next_record],
                                True, address & block_mask))
                        continue
                    # No executable memory record: pure hit run to the
                    # window-stall point or the end of the trace.
                    stop_record = stop if stop < trace_length \
                        else trace_length
                    core_cycle += cost_prefix[stop_record] \
                        - cost_prefix[next_record]
                    next_record = stop_record
                    break
                core._next_record = next_record
                core._core_cycle = core_cycle
                issued_instructions = instr_prefix[next_record]
                core._issued_instructions = issued_instructions
                run_stats.instructions = stats_instr_base \
                    + issued_instructions
                run_stats.memory_instructions = stats_mem_base \
                    + next_record
                run_stats.writebacks += new_writebacks
                run_stats.llc_miss_loads += new_miss_loads
                run_stats.llc_miss_stores += new_miss_stores
                if next_record >= trace_length and not outstanding:
                    # Inline _retire.
                    core._finished = True
                    run_stats.finish_cycle = core_cycle
                continue
            else:
                # CONTROLLER_WAKE (superseded wake events stay in the
                # queue, exactly like the reference loop's heap).
                if scheduled_wake is not None and scheduled_wake <= cycle:
                    scheduled_wake = None
                next_due = None
                for wakeup_heap, wakeup_get in wake_scan:
                    while wakeup_heap:
                        head = wakeup_heap[0]
                        if wakeup_get(head[1]) == head[0]:
                            if next_due is None or head[0] < next_due:
                                next_due = head[0]
                            break
                        heappop(wakeup_heap)
                if next_due is None:
                    continue
                if next_due <= cycle:
                    # Inline MemoryController.wake: each channel with
                    # pending wake-ups runs ChannelController.wake in
                    # controller order (KEEP IN SYNC with both).
                    due_work = []
                    for ci in range(n_channels):
                        wakeup_cycle_map = wakeup_cycle_l[ci]
                        if not wakeup_cycle_map:
                            continue
                        if len(wakeup_cycle_map) == 1:
                            bank_index, due_cycle = \
                                next(iter(wakeup_cycle_map.items()))
                            if due_cycle <= cycle:
                                del wakeup_cycle_map[bank_index]
                                due_work.append((ci, (bank_index,)))
                        else:
                            due = [bank_index for bank_index, due_cycle
                                   in wakeup_cycle_map.items()
                                   if due_cycle <= cycle]
                            if due:
                                for bank_index in due:
                                    del wakeup_cycle_map[bank_index]
                                due_work.append((ci, due))
                    if not due_work:
                        due_work = None

            # ----------------------------------------------------------
            # Shared scheduling block: inline
            # ChannelController._try_schedule_bank for each due bank of
            # each due channel (KEEP IN SYNC with _run_single).
            # ----------------------------------------------------------
            if due_work is not None:
                completed = []
                completed_append = completed.append
                for ci, due_banks in due_work:
                    (cc, channel, banks, rank_of, refresh_on,
                     apply_refresh, counters, track_rows, reads_by_bank,
                     reads_get, writes_by_bank, writes_get, wakeup_heap,
                     wakeup_cycle_map, wakeup_get, read_latencies,
                     write_latencies) = chan_ctx[ci]
                    if service_kind == 1:
                        (fig_stats, fig_lookup, fig_entries, fig_tags,
                         fig_row_ids, fig_caches, fig_may_cache,
                         fig_insert) = mech_ctx[ci]
                    elif service_kind == 2:
                        (lisa_stats, lisa_banks_get, lisa_bank_state,
                         lisa_insert) = mech_ctx[ci]
                    for flat_bank in due_banks:
                        bank = banks[flat_bank]
                        ready_at = bank._busy_until
                        nca = bank._next_col_allowed
                        if nca > ready_at:
                            ready_at = nca
                        while True:
                            if ready_at > cycle:
                                # Inline _note_wakeup, incl. its
                                # no-pending guard.
                                if flat_bank not in reads_by_bank \
                                        and flat_bank \
                                        not in writes_by_bank:
                                    wakeup_cycle_map.pop(flat_bank, None)
                                else:
                                    existing = wakeup_get(flat_bank)
                                    if existing is None \
                                            or ready_at < existing:
                                        wakeup_cycle_map[flat_bank] = \
                                            ready_at
                                        heappush(wakeup_heap,
                                                 (ready_at, flat_bank))
                                        wake_pushed = True
                                break
                            # Inline FRFCFSScheduler.pick + _first_ready
                            # (KEEP IN SYNC with _run_single).
                            bank_reads = reads_get(flat_bank)
                            bank_writes = writes_get(flat_bank)
                            if bank_writes is None:
                                if bank_reads is None:
                                    break
                                candidates = bank_reads
                            elif bank_reads is None:
                                if not cc._drain_mode \
                                        and cc._write_count < drain_low:
                                    break
                                candidates = bank_writes
                            elif cc._drain_mode:
                                candidates = bank_writes
                            else:
                                candidates = bank_reads
                            if len(candidates) == 1:
                                request = candidates[0]
                            else:
                                request = None
                                open_row = bank.open_row
                                if open_row is not None:
                                    if scan_kind == 0:
                                        for cand in candidates:
                                            if cand.decoded.row \
                                                    == open_row:
                                                request = cand
                                                break
                                    elif scan_kind == 1:
                                        # Inline FIGCache.effective_row.
                                        lookup_get = \
                                            fig_lookup[flat_bank].get
                                        entries = \
                                            fig_entries[flat_bank]
                                        row_ids = \
                                            fig_row_ids[flat_bank]
                                        for cand in candidates:
                                            cand_decoded = cand.decoded
                                            cand_row = cand_decoded.row
                                            slot = lookup_get(
                                                (cand_row,
                                                 cand_decoded.column_block
                                                 // seg_blocks))
                                            if slot is None:
                                                effective = cand_row
                                            elif not entries[slot].dirty \
                                                    and open_row \
                                                    == cand_row:
                                                effective = cand_row
                                            else:
                                                effective = row_ids[
                                                    slot
                                                    // segments_per_row]
                                            if effective == open_row:
                                                request = cand
                                                break
                                    elif scan_kind == 2:
                                        # Inline LISAVillaMechanism
                                        # .effective_row (a missing bank
                                        # state means an empty cache).
                                        state = \
                                            lisa_banks_get(flat_bank)
                                        if state is None:
                                            for cand in candidates:
                                                if cand.decoded.row \
                                                        == open_row:
                                                    request = cand
                                                    break
                                        else:
                                            entries_get = \
                                                state.entries.get
                                            for cand in candidates:
                                                cand_row = \
                                                    cand.decoded.row
                                                tag_entry = \
                                                    entries_get(cand_row)
                                                if tag_entry is None:
                                                    effective = cand_row
                                                elif not tag_entry.dirty \
                                                        and open_row \
                                                        == cand_row:
                                                    effective = cand_row
                                                else:
                                                    effective = \
                                                        lisa_fast_base \
                                                        + tag_entry \
                                                        .cache_slot
                                                if effective == open_row:
                                                    request = cand
                                                    break
                                    else:
                                        row_of = row_of_l[ci]
                                        for cand in candidates:
                                            if row_of(cand) == open_row:
                                                request = cand
                                                break
                                if request is None:
                                    request = candidates[0]
                            # Inline _dequeue.
                            is_write = request.is_write
                            if is_write:
                                write_count = cc._write_count = \
                                    cc._write_count - 1
                                if cc._drain_mode \
                                        and write_count <= drain_low:
                                    cc._drain_mode = False
                                index = writes_by_bank
                            else:
                                cc._read_count -= 1
                                index = reads_by_bank
                            queue = index[flat_bank]
                            if queue[0] is request:
                                queue.popleft()
                            else:
                                queue.remove(request)
                            if not queue:
                                del index[flat_bank]
                            # SERVICE copy B — KEEP IN SYNC with copy A
                            # above, with _run_single copy B, and with
                            # the sources those name (copy B additionally
                            # handles writes: a write hit marks the tag
                            # entry dirty and is always served from the
                            # cache row).
                            decoded = request.decoded
                            insert_kind = 0
                            if service_kind == 0:
                                row = decoded.row
                                cache_hit = None
                            elif service_kind == 1:
                                src_row = decoded.row
                                segment = \
                                    decoded.column_block // seg_blocks
                                slot = fig_lookup[flat_bank].get(
                                    (src_row, segment))
                                if slot is None:
                                    # Fused miss (see copy A).
                                    fig_stats.cache_lookups += 1
                                    row = src_row
                                    cache_hit = False
                                    insert_kind = 1
                                else:
                                    fig_stats.cache_lookups += 1
                                    fig_stats.cache_hits += 1
                                    tag_entry = \
                                        fig_entries[flat_bank][slot]
                                    if tag_entry.benefit \
                                            < fig_benefit_max:
                                        tag_entry.benefit += 1
                                    tags = fig_tags[flat_bank]
                                    tags._touch_counter += 1
                                    tag_entry.last_touch = \
                                        tags._touch_counter
                                    if is_write:
                                        tag_entry.dirty = True
                                        row = fig_row_ids[flat_bank][
                                            slot // segments_per_row]
                                    elif not tag_entry.dirty \
                                            and bank.open_row == src_row:
                                        row = src_row
                                    else:
                                        row = fig_row_ids[flat_bank][
                                            slot // segments_per_row]
                                    cache_hit = True
                            else:
                                src_row = decoded.row
                                state = lisa_banks_get(flat_bank)
                                tag_entry = None if state is None \
                                    else state.entries.get(src_row)
                                if tag_entry is None:
                                    lisa_stats.cache_lookups += 1
                                    row = src_row
                                    cache_hit = False
                                    insert_kind = 2
                                else:
                                    lisa_stats.cache_lookups += 1
                                    lisa_stats.cache_hits += 1
                                    if tag_entry.benefit \
                                            < lisa_benefit_max:
                                        tag_entry.benefit += 1
                                    if is_write:
                                        tag_entry.dirty = True
                                        row = lisa_fast_base \
                                            + tag_entry.cache_slot
                                    elif not tag_entry.dirty \
                                            and bank.open_row == src_row:
                                        row = src_row
                                    else:
                                        row = lisa_fast_base \
                                            + tag_entry.cache_slot
                                    cache_hit = True
                            rank = rank_of[flat_bank]
                            if refresh_on \
                                    and cycle >= rank.next_refresh_due:
                                start = apply_refresh(cycle, flat_bank)
                            else:
                                start = cycle
                            served_fast = all_fast or row >= regular_rows
                            busy_until = bank._busy_until
                            if busy_until > start:
                                start = busy_until
                            open_row = bank.open_row
                            if open_row == row:
                                outcome = "hit"
                                counters.row_hits += 1
                                col_cycle = bank._next_col_allowed
                                if start > col_cycle:
                                    col_cycle = start
                            else:
                                if open_row is None:
                                    outcome = "miss"
                                    counters.row_misses += 1
                                    act_cycle = start
                                    naa = bank._next_act_allowed
                                    if act_cycle < naa:
                                        act_cycle = naa
                                else:
                                    outcome = "conflict"
                                    counters.row_conflicts += 1
                                    pre_cycle = bank._next_pre_allowed
                                    if start > pre_cycle:
                                        pre_cycle = start
                                    act_cycle = pre_cycle + (
                                        trp_fast if all_fast
                                        or open_row >= regular_rows
                                        else trp_slow)
                                    counters.precharges += 1
                                rrd_earliest = rank._last_activate + trrd
                                if rrd_earliest > act_cycle:
                                    act_cycle = rrd_earliest
                                recent = rank._recent_activates
                                if len(recent) == 4:
                                    faw_earliest = recent[0] + tfaw
                                    if faw_earliest > act_cycle:
                                        act_cycle = faw_earliest
                                if act_bg_pacing:
                                    bg_last = rank._bg_last_act
                                    bg_index = bank._bg_index
                                    bg_earliest = \
                                        bg_last[bg_index] + trrd_l
                                    if bg_earliest > act_cycle:
                                        act_cycle = bg_earliest
                                    bg_last[bg_index] = act_cycle
                                rank._last_activate = act_cycle
                                recent.append(act_cycle)
                                counters.activates += 1
                                if served_fast:
                                    counters.fast_activates += 1
                                if track_rows:
                                    counters.record_row_activation(
                                        bank._key, row)
                                bank.open_row = row
                                bank._last_act = act_cycle
                                trcd, tras = act_table[served_fast]
                                bank._next_pre_allowed = act_cycle + tras
                                col_cycle = act_cycle + trcd
                            if col_pacing:
                                bg_index = bank._bg_index
                                earliest_col = \
                                    rank._bg_last_col[bg_index] + tccd_l
                                cross = rank._last_col_cycle + tccd_s
                                if cross > earliest_col:
                                    earliest_col = cross
                                if earliest_col > col_cycle:
                                    col_cycle = earliest_col
                            data_latency, tbl, tccd, t_a, t_b = \
                                col_table[2 | served_fast] if is_write \
                                else col_table[served_fast]
                            burst_start = col_cycle + data_latency
                            bus_free_at = channel._bus_free_at
                            if burst_start < bus_free_at:
                                burst_start = bus_free_at
                                col_cycle = burst_start - data_latency
                            completion = burst_start + tbl
                            channel._bus_free_at = completion
                            if is_write:
                                counters.writes += 1
                                if served_fast:
                                    counters.fast_writes += 1
                                next_col = col_cycle + tccd
                                turnaround = completion + t_a  # tWTR
                                if turnaround > next_col:
                                    next_col = turnaround
                                next_pre = completion + t_b    # tWR
                            else:
                                counters.reads += 1
                                if served_fast:
                                    counters.fast_reads += 1
                                next_col = col_cycle + tccd
                                next_pre = col_cycle + t_a     # tRTP
                            ready_at = bank._next_col_allowed
                            if next_col > ready_at:
                                bank._next_col_allowed = ready_at = \
                                    next_col
                            if next_pre > bank._next_pre_allowed:
                                bank._next_pre_allowed = next_pre
                            if col_cycle > bank._busy_until:
                                bank._busy_until = col_cycle
                            if col_pacing:
                                rank._last_col_cycle = col_cycle
                                rank._bg_last_col[bg_index] = col_cycle
                            request.in_dram_cache_hit = cache_hit
                            request.row_buffer_outcome = outcome
                            request.served_fast = served_fast
                            if insert_kind:
                                # Inline FIGCache.service /
                                # LISAVillaMechanism.service miss tails
                                # (KEEP IN SYNC with copy A).  The
                                # relocation work may push the bank's
                                # busy window past the access, so
                                # re-read its readiness (inline
                                # Bank.ready_for_next) for the wake
                                # scheduled below.
                                if insert_kind == 1:
                                    bank_cache = fig_caches[flat_bank]
                                    insertion = bank_cache.insertion
                                    if (bank_cache.excluded_subarray
                                            < 0
                                            or fig_may_cache(
                                                bank_cache, src_row)) \
                                            and (insertion
                                                 .always_inserts
                                                 or insertion
                                                 .should_insert(
                                                     src_row,
                                                     segment)):
                                        fig_insert(
                                            channel, completion,
                                            flat_bank, bank_cache,
                                            src_row, segment,
                                            dirty=is_write)
                                        busy = bank._busy_until
                                        nca = bank._next_col_allowed
                                        ready_at = busy \
                                            if busy > nca else nca
                                else:
                                    if state is None:
                                        state = lisa_bank_state(
                                            flat_bank)
                                    lisa_insert(channel, completion,
                                                flat_bank, state,
                                                src_row,
                                                dirty=is_write)
                                    busy = bank._busy_until
                                    nca = bank._next_col_allowed
                                    ready_at = busy \
                                        if busy > nca else nca
                            request.issue_cycle = cycle
                            request.completion_cycle = completion
                            latency = completion - request.arrival_cycle
                            if is_write:
                                cc.completed_writes += 1
                                write_latencies[latency] = \
                                    write_latencies.get(latency, 0) + 1
                            else:
                                cc.completed_reads += 1
                                read_latencies[latency] = \
                                    read_latencies.get(latency, 0) + 1
                            completed_append(request)

            if completed:
                # Inline completion delivery (see Simulator._run) plus
                # request pooling: reads are recycled right after their
                # notify, writes immediately — nothing retains them.
                # The notify itself is TraceCore.notify_completion
                # inlined (KEEP IN SYNC): clear the block's outstanding
                # misses and MSHR, charge the stall, advance the clock,
                # and reschedule the core if it can now make progress.
                for request in completed:
                    if not request.is_write:
                        core = cores[request.core_id]
                        completion_cycle = request.completion_cycle
                        address = request.address
                        block_mask = core._block_mask
                        block = address & block_mask
                        outstanding = core._outstanding
                        kept = [miss for miss in outstanding
                                if (miss.address & block_mask) != block]
                        if len(kept) != len(outstanding):
                            mshr_entries = core._mshr_entries
                            mshr_capacity = core._mshr_capacity
                            window_size = core._window_size
                            issued = core._issued_instructions
                            oldest = outstanding[0]
                            stalled_before = \
                                len(mshr_entries) >= mshr_capacity \
                                or (oldest.blocks_window
                                    and (issued
                                         - oldest.instruction_position)
                                    >= window_size)
                            # In-place so aliases stay valid; the MSHR
                            # entry must exist (outstanding miss =>
                            # live MSHR).
                            outstanding[:] = kept
                            del mshr_entries[address >> core._mshr_shift]
                            if kept:
                                oldest = kept[0]
                                can_progress = not (
                                    oldest.blocks_window
                                    and (issued
                                         - oldest.instruction_position)
                                    >= window_size)
                            else:
                                can_progress = True
                            if can_progress \
                                    and completion_cycle \
                                    > core._core_cycle:
                                stall = completion_cycle \
                                    - core._core_cycle
                                if stalled_before \
                                        and len(mshr_entries) + 1 \
                                        >= mshr_capacity:
                                    core.stats.stall_cycles_mshr += stall
                                else:
                                    core.stats.stall_cycles_window += \
                                        stall
                                core._core_cycle = completion_cycle
                            if not kept and core._next_record \
                                    >= core._trace_length:
                                # Inline _retire.
                                core._finished = True
                                core.stats.finish_cycle = \
                                    core._core_cycle
                            if can_progress and not core._finished:
                                event = (completion_cycle, seq,
                                         _CORE_RUN, core)
                                seq += 1
                                bucket_key = \
                                    completion_cycle >> _BUCKET_SHIFT
                                if bucket_key == cur_key:
                                    insort(cur_list, event, cur_ptr)
                                    cur_len += 1
                                else:
                                    bucket = buckets_get(bucket_key)
                                    if bucket is None:
                                        buckets[bucket_key] = [event]
                                    else:
                                        bucket.append(event)
                    freelist_append(request)

            # Trailing wake scheduling (skipped after CORE_RUN, exactly
            # like the reference loop's `continue`).  Scanning only when
            # this event pushed a wake note or cleared the latch is
            # bit-identical: otherwise the earliest pending wake is
            # already covered by ``scheduled_wake``, so the reference
            # scan would push nothing either.
            if not wake_pushed and kind != _CONTROLLER_WAKE:
                continue
            wake_at = None
            for wakeup_heap, wakeup_get in wake_scan:
                while wakeup_heap:
                    head = wakeup_heap[0]
                    if wakeup_get(head[1]) == head[0]:
                        if wake_at is None or head[0] < wake_at:
                            wake_at = head[0]
                        break
                    heappop(wakeup_heap)
            if wake_at is not None:
                if wake_at < cycle:
                    wake_at = cycle
                if scheduled_wake is None or scheduled_wake > wake_at:
                    scheduled_wake = wake_at
                    event = (wake_at, seq, _CONTROLLER_WAKE, None)
                    seq += 1
                    bucket_key = wake_at >> _BUCKET_SHIFT
                    if bucket_key == cur_key:
                        insort(cur_list, event, cur_ptr)
                        cur_len += 1
                    else:
                        bucket = buckets_get(bucket_key)
                        if bucket is None:
                            buckets[bucket_key] = [event]
                        else:
                            bucket.append(event)

        if __debug__:
            for (wakeup_heap, wakeup_cycle_map), cc in zip(wakeup_views,
                                                           ccs):
                current_heap, current_live = cc.wakeup_view()
                assert wakeup_heap is current_heap \
                    and wakeup_cycle_map is current_live, (
                        "ChannelController rebound its wake-up "
                        "structures mid-run; the hoisted snapshot went "
                        "stale (see ChannelController.wakeup_view)")
        return self._finish(cycle, processed)

    # ------------------------------------------------------------------
    # Generic multi-channel loop: the reference heap engine plus request
    # pooling.  Serves as the traced-run path and the fallback for any
    # controller shape the fused multi-channel loop does not replicate.
    # ------------------------------------------------------------------
    def _run_multi_generic(self) -> int:
        cores = self._cores
        controller = self._controller
        channel_controllers = controller.channel_controllers
        wakeup_views = [cc.wakeup_view() for cc in channel_controllers]
        route_cache_get = controller._route_cache.get
        controller_wake = controller.wake

        # Address decode, inlined for route-cache misses (the mixed
        # multicore traces rarely repeat an address, so nearly every
        # request pays a full decode).  KEEP IN SYNC with
        # AddressMapper.decode / AddressMapper.flat_bank and
        # MemoryController.route.
        from repro.dram.address import DecodedAddress
        mapper = controller._device.mapper
        offset_bits = mapper._offset_bits
        column_bits = mapper._column_bits
        column_mask = (1 << column_bits) - 1
        channel_bits = mapper._channel_bits
        channel_mask = (1 << channel_bits) - 1
        bank_bits = mapper._bank_bits
        bank_mask = (1 << bank_bits) - 1
        bankgroup_bits = mapper._bankgroup_bits
        bankgroup_mask = (1 << bankgroup_bits) - 1
        rank_bits = mapper._rank_bits
        rank_mask = (1 << rank_bits) - 1
        rows_per_bank = mapper._rows
        banks_per_rank = mapper._banks_per_rank
        banks_per_bankgroup = mapper._banks_per_bankgroup
        route_cache = controller._route_cache
        decoded_address = DecodedAddress

        max_cycles = self._limits.max_cycles
        max_events = self._limits.max_events
        telemetry = self._telemetry
        epoch_end = telemetry.next_epoch if telemetry is not None \
            else max_cycles + 1

        request_ids = _request_ids
        freelist: list[MemoryRequest] = []
        freelist_pop = freelist.pop
        freelist_append = freelist.append

        # Precompile every core's batch-step plan (the cache hierarchy
        # is cycle-free; see _compile_core_plan).  Core-run events then
        # go through _step_core, which does one loop iteration per
        # memory-touching record instead of per trace record.
        step_core = _step_core
        core_plans = {core.core_id: _plan_for_core(core)
                      for core in cores}

        # Ascending (cycle, seq) appends form a valid heap as-is.
        seq = 0
        events: list = []
        for core in cores:
            events.append((0, seq, _CORE_RUN, core))
            seq += 1
        scheduled_wake: int | None = None
        processed = self.processed_events
        cycle = 0
        while events:
            cycle, _, kind, payload = heappop(events)
            if cycle > max_cycles or processed >= max_events:
                self._now = cycle
                self.processed_events = processed
                self._raise_limit(cycle)
            if cycle >= epoch_end:
                epoch_end = telemetry.advance(cycle)
            processed += 1

            if kind == _REQUEST_ARRIVAL:
                address = payload.address
                entry = route_cache_get(address)
                if entry is None:
                    bits = address >> offset_bits
                    column = bits & column_mask
                    bits >>= column_bits
                    channel_index = (bits & channel_mask) if channel_bits \
                        else 0
                    bits >>= channel_bits
                    bank_index = bits & bank_mask
                    bits >>= bank_bits
                    bankgroup = bits & bankgroup_mask
                    bits >>= bankgroup_bits
                    rank_index = (bits & rank_mask) if rank_bits else 0
                    bits >>= rank_bits
                    decoded = decoded_address(channel_index, rank_index,
                                              bankgroup, bank_index,
                                              bits % rows_per_bank, column)
                    flat_bank = (rank_index * banks_per_rank
                                 + bankgroup * banks_per_bankgroup
                                 + bank_index)
                    channel_controller = channel_controllers[channel_index]
                    route_cache[address] = (decoded, flat_bank,
                                            channel_controller)
                    payload.decoded = decoded
                    payload.flat_bank = flat_bank
                else:
                    payload.decoded = entry[0]
                    payload.flat_bank = entry[1]
                    channel_controller = entry[2]
                completed = channel_controller.enqueue(payload, cycle)
                for request in completed:
                    if not request.is_write:
                        core = cores[request.core_id]
                        completion_cycle = request.completion_cycle
                        if core.notify_completion(request.address,
                                                  completion_cycle):
                            heappush(events, (completion_cycle, seq,
                                              _CORE_RUN, core))
                            seq += 1
                    freelist_append(request)
            elif kind == _CORE_RUN:
                issued_requests = step_core(
                    payload, core_plans[payload.core_id], cycle)
                if issued_requests:
                    core_id = payload.core_id
                    for issue_cycle, address, is_write in issued_requests:
                        if freelist:
                            request = freelist_pop()
                            request.core_id = core_id
                            request.address = address
                            request.is_write = is_write
                            request.arrival_cycle = issue_cycle
                            request.request_id = next(request_ids)
                        else:
                            request = MemoryRequest(core_id, address,
                                                    is_write, issue_cycle)
                        heappush(events, (issue_cycle, seq,
                                          _REQUEST_ARRIVAL, request))
                        seq += 1
                continue
            else:
                if scheduled_wake is not None and scheduled_wake <= cycle:
                    scheduled_wake = None
                next_due = None
                for heap, live in wakeup_views:
                    while heap:
                        head = heap[0]
                        if live.get(head[1]) == head[0]:
                            if next_due is None or head[0] < next_due:
                                next_due = head[0]
                            break
                        heappop(heap)
                if next_due is None:
                    continue
                if next_due <= cycle:
                    woken = controller_wake(cycle)
                    for request in woken:
                        if not request.is_write:
                            core = cores[request.core_id]
                            completion_cycle = request.completion_cycle
                            if core.notify_completion(request.address,
                                                      completion_cycle):
                                heappush(events, (completion_cycle, seq,
                                                  _CORE_RUN, core))
                                seq += 1
                        freelist_append(request)
            wake_at = None
            for heap, live in wakeup_views:
                while heap:
                    head = heap[0]
                    if live.get(head[1]) == head[0]:
                        if wake_at is None or head[0] < wake_at:
                            wake_at = head[0]
                        break
                    heappop(heap)
            if wake_at is not None:
                if wake_at < cycle:
                    wake_at = cycle
                if scheduled_wake is None or scheduled_wake > wake_at:
                    scheduled_wake = wake_at
                    heappush(events, (wake_at, seq, _CONTROLLER_WAKE, None))
                    seq += 1

        if __debug__:
            for (heap, live), cc in zip(wakeup_views, channel_controllers):
                current_heap, current_live = cc.wakeup_view()
                assert heap is current_heap and live is current_live, (
                    "ChannelController rebound its wake-up structures "
                    "mid-run; the hoisted snapshot went stale "
                    "(see ChannelController.wakeup_view)")
        return self._finish(cycle, processed)
