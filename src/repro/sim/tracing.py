"""Event-level simulation tracing with Chrome trace-event export.

:class:`EventTracer` is a bounded in-memory recorder of the fine-grained
events the end-of-run aggregates cannot show: which DRAM commands a
mechanism issues, when requests wait in the controller queues, and when
in-DRAM cache insertions, evictions, and relocations fire.  The recorded
stream exports to Chrome trace-event JSON (:func:`to_chrome_trace`), the
format Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` render
as an interactive timeline — one track per channel/bank, async spans for
requests.

Three event families are recorded:

* **DRAM commands** — ``ACT``/``RD``/``WR``/``PRE`` implied by each
  serviced request's row-buffer outcome (hit: column access only; miss:
  activate + column; conflict: precharge + activate + column), plus
  ``REF``/``REFpb`` from the refresh machinery.  Command timestamps
  derive from the request's service window: ``PRE``/``ACT`` are stamped
  at the issue cycle and the column access at the data-return cycle
  (the simulator's timing model resolves intra-service command spacing
  into the completion time rather than materialising per-command
  cycles).
* **Request lifecycle** — one record per serviced request carrying all
  three timestamps (enqueue/arrival, scheduled/issue, data return),
  exported as an async span with a ``scheduled`` instant.
* **Mechanism events** — FIGCache segment insert/evict (with FIGARO
  relocation cost), LISA-VILLA row insert/evict (with hop distance).

Zero-overhead-when-off contract (the PR 4 telemetry discipline): tracing
is enabled by *installing* a tracer on the assembled system
(``System(..., tracer=...)``); with no tracer installed every hook is a
single ``tracer is not None`` comparison against an attribute that is
``None``, hoisted out of the per-request loops where possible, and the
turbo backend's fully-fused single-channel loop is not touched at all
(traced turbo runs take the generic loop, which is bit-identical by the
backend parity contract).  Tracing never changes simulated results —
hooks are read-only observers — so results are bit-identical with
tracing on or off (``tests/test_backend.py`` asserts both directions).

The recorder is a ring buffer: once ``max_events`` records are held, the
oldest are dropped (``dropped_events`` counts them), so a trace of an
arbitrarily long run is bounded and keeps the most recent window.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

#: Bump when the recorded tuples or the exported JSON layout change.
TRACE_SCHEMA_VERSION = 1

#: Default ring-buffer capacity (records, not exported JSON events).
DEFAULT_MAX_EVENTS = 1_000_000

#: Record kind tags (first tuple element of every ring-buffer record).
CMD = "cmd"
REQ = "req"
REF = "ref"
MECH = "mech"


class EventTracer:
    """Bounded recorder of simulation events.

    Records are compact tuples appended to a ``deque(maxlen=...)`` ring
    buffer — O(1) per event, oldest-first eviction.  The hook methods are
    written for the controller's service path: one call per serviced
    request (:meth:`request_serviced`) derives every implied DRAM
    command, so the hot loops carry exactly one ``is not None`` check
    per request.
    """

    __slots__ = ("max_events", "events", "total_events")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        #: Ring buffer of event records (tuples; see module docstring).
        self.events: deque = deque(maxlen=max_events)
        #: Records ever offered (including ones the ring has dropped).
        self.total_events = 0

    @property
    def dropped_events(self) -> int:
        """Records evicted by the ring buffer (oldest-first)."""
        return self.total_events - len(self.events)

    # ------------------------------------------------------------------
    # Hook methods (called from the instrumented simulation objects).
    # ------------------------------------------------------------------
    def request_serviced(self, request) -> None:
        """Record one serviced request: implied commands + lifecycle.

        Called from the channel controller once per serviced request,
        after the service outcome fields are filled in.  The row-buffer
        outcome determines the implied command sequence; the request
        record itself carries the full lifecycle (arrival, issue,
        completion).
        """
        decoded = request.decoded
        channel = decoded.channel
        flat_bank = request.flat_bank
        issue = request.issue_cycle
        completion = request.completion_cycle
        outcome = request.row_buffer_outcome
        op = "WR" if request.is_write else "RD"
        append = self.events.append
        count = 2
        if outcome == "miss":
            append((CMD, issue, channel, flat_bank, "ACT"))
            count = 3
        elif outcome == "conflict":
            append((CMD, issue, channel, flat_bank, "PRE"))
            append((CMD, issue, channel, flat_bank, "ACT"))
            count = 4
        append((CMD, completion, channel, flat_bank, op))
        append((REQ, request.arrival_cycle, channel, flat_bank, op,
                request.request_id, issue, completion, outcome,
                request.in_dram_cache_hit, request.served_fast))
        self.total_events += count

    def refresh(self, start_cycle: int, completion_cycle: int,
                channel: int, flat_bank: int, mode: str) -> None:
        """Record one refresh command.

        ``mode`` is ``"all-bank"`` (REFab: ``flat_bank`` is the rank's
        first bank and the command blocks the whole rank) or
        ``"per-bank"`` (REFpb/REFSB: ``flat_bank`` is the refreshed
        bank).
        """
        self.total_events += 1
        self.events.append((REF, start_cycle, channel, flat_bank, mode,
                            completion_cycle))

    def mechanism_event(self, cycle: int, channel: int, flat_bank: int,
                        name: str, detail: dict | None = None) -> None:
        """Record one mechanism event (insert/evict/relocation/...)."""
        self.total_events += 1
        self.events.append((MECH, cycle, channel, flat_bank, name, detail))

    # ------------------------------------------------------------------
    # Installation.
    # ------------------------------------------------------------------
    def install(self, system) -> None:
        """Attach this tracer to an assembled :class:`~repro.sim.system.System`.

        Sets the ``tracer`` attribute on every channel controller (command
        and request hooks), every channel (refresh hook), and every
        mechanism (insert/evict hooks).  ``System.__init__`` calls this
        when constructed with a tracer.
        """
        for controller in system.controller.channel_controllers:
            controller.tracer = self
            controller.channel.tracer = self
        for mechanism in system.mechanisms:
            mechanism.tracer = self


# ----------------------------------------------------------------------
# Chrome trace-event export.
# ----------------------------------------------------------------------
def _cycles_to_us(cycle: int, cpu_clock_ghz: float) -> float:
    """CPU cycles → microseconds (the Chrome trace-event time unit)."""
    return cycle / cpu_clock_ghz / 1000.0


def to_chrome_trace(tracer: EventTracer, dram_config,
                    metadata: dict | None = None) -> dict:
    """Export a tracer's ring buffer as a Chrome trace-event JSON object.

    Layout: one *process* per channel (pid = channel id), one *thread*
    per bank (tid = flat bank index) named with its bank group, so
    Perfetto renders a channel/bank track hierarchy.  DRAM commands are
    thread-scoped instants, refreshes are complete (duration) events,
    requests are async spans (``b``/``n``/``e`` with the request id),
    and mechanism events are instants carrying their detail dict as
    ``args``.
    """
    ghz = dram_config.cpu_clock_ghz
    banks_per_bankgroup = dram_config.banks_per_bankgroup
    banks_per_rank = dram_config.banks_per_rank
    trace_events: list[dict] = []
    tracks: set[tuple[int, int]] = set()

    for record in tracer.events:
        kind = record[0]
        if kind == CMD:
            _, cycle, channel, flat_bank, name = record
            tracks.add((channel, flat_bank))
            trace_events.append({
                "name": name, "ph": "i", "s": "t", "cat": "dram",
                "ts": _cycles_to_us(cycle, ghz),
                "pid": channel, "tid": flat_bank,
            })
        elif kind == REQ:
            (_, arrival, channel, flat_bank, op, request_id, issue,
             completion, outcome, cache_hit, served_fast) = record
            tracks.add((channel, flat_bank))
            common = {"cat": "request", "id": request_id,
                      "pid": channel, "tid": flat_bank,
                      "name": "read" if op == "RD" else "write"}
            trace_events.append({
                **common, "ph": "b", "ts": _cycles_to_us(arrival, ghz),
                "args": {"row_buffer_outcome": outcome,
                         "in_dram_cache_hit": cache_hit,
                         "served_fast": served_fast,
                         "arrival_cycle": arrival,
                         "issue_cycle": issue,
                         "completion_cycle": completion},
            })
            trace_events.append({
                **common, "ph": "n", "ts": _cycles_to_us(issue, ghz),
                "name": "scheduled",
            })
            trace_events.append({
                **common, "ph": "e", "ts": _cycles_to_us(completion, ghz),
            })
        elif kind == REF:
            _, cycle, channel, flat_bank, mode, completion = record
            tracks.add((channel, flat_bank))
            trace_events.append({
                "name": "REF" if mode == "all-bank" else "REFpb",
                "ph": "X", "cat": "refresh",
                "ts": _cycles_to_us(cycle, ghz),
                "dur": max(_cycles_to_us(completion - cycle, ghz), 0.0),
                "pid": channel, "tid": flat_bank,
                "args": {"mode": mode},
            })
        else:  # MECH
            _, cycle, channel, flat_bank, name, detail = record
            tracks.add((channel, flat_bank))
            trace_events.append({
                "name": name, "ph": "i", "s": "t", "cat": "mechanism",
                "ts": _cycles_to_us(cycle, ghz),
                "pid": channel, "tid": flat_bank,
                "args": dict(detail) if detail else {},
            })

    # Metadata events name the channel/bank track hierarchy.
    naming: list[dict] = []
    for channel in sorted({channel for channel, _ in tracks}):
        naming.append({"name": "process_name", "ph": "M", "pid": channel,
                       "args": {"name": f"channel {channel}"}})
    for channel, flat_bank in sorted(tracks):
        local = flat_bank % banks_per_rank
        label = (f"bank {flat_bank} "
                 f"(bg {local // banks_per_bankgroup})")
        naming.append({"name": "thread_name", "ph": "M", "pid": channel,
                       "tid": flat_bank, "args": {"name": label}})

    other = {"schema": TRACE_SCHEMA_VERSION,
             "cpu_clock_ghz": ghz,
             "recorded_events": len(tracer.events),
             "total_events": tracer.total_events,
             "dropped_events": tracer.dropped_events}
    if metadata:
        other.update(metadata)
    return {"traceEvents": naming + trace_events,
            "displayTimeUnit": "ns",
            "otherData": other}


def write_chrome_trace(path: str | Path, tracer: EventTracer, dram_config,
                       metadata: dict | None = None) -> Path:
    """Serialise :func:`to_chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    payload = to_chrome_trace(tracer, dram_config, metadata)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return path
