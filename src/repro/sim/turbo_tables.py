"""Precompiled flat timing tables for the turbo simulation backend.

The reference timing model (:mod:`repro.dram.bank`) reads its constants
through :class:`~repro.dram.timings.TimingSet` attributes and per-bank
hoisted tuples.  The turbo backend's fused service path instead indexes a
:class:`ChannelTables` record compiled once per device organization: every
per-access timing decision becomes one integer-indexed load from a flat
tuple, with the speed class (slow/fast region) and the direction
(read/write) folded into the index.

Table layout (all entries are integer CPU cycles):

* ``col[(is_write << 1) | served_fast]`` → ``(data_latency, tbl, tccd,
  t_a, t_b)``.  For reads ``t_a`` is tRTP and ``t_b`` is unused (0); for
  writes ``t_a`` is tWTR and ``t_b`` is tWR.  The asymmetric tails are
  padded so both directions unpack identically.
* ``act[served_fast]`` → ``(trcd, tras)`` for the ACTIVATE of a row in
  that speed class.
* ``trp[speed_class]`` → precharge latency of the *open* row's class
  (conflicts pay the open row's tRP, not the new row's).

Rank-pacing scalars (tRRD, tFAW, and the bank-group tCCD_S/L and tRRD_L
splits with their gating flags) are carried alongside so the fused path
sees the exact same pacing rules as :meth:`Bank._activate` and the
column-pacing block of :meth:`Bank.access` — including the flags that
keep non-bank-grouped standards (the DDR4-1600 Table 1 device, LPDDR4)
on the historical ungated path.  KEEP the derivations IN SYNC with
``Bank.__init__``; the cross-backend parity suite (``tests/test_backend``)
and the golden fixtures enforce the equivalence across all six standards.

Tables are cached by their timing/layout content — two channels (or two
simulations) built from the same :class:`~repro.dram.standards.DeviceProfile`
share one compiled record.  ``TimingSet`` is a frozen dataclass, hence
hashable, which is what makes the content key cheap.

This module is deliberately free of hot-loop state: it is plain data
compiled from frozen inputs, which also makes it the natural compilation
unit for the optional mypyc/Cython build (see ``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.channel import Channel
from repro.dram.config import DRAMConfig
from repro.dram.timings import TimingSet


@dataclass(frozen=True)
class ChannelTables:
    """Flat int-indexed timing tables for one DRAM organization."""

    #: ``col[(is_write << 1) | served_fast]`` → 5-tuple (see module doc).
    col: tuple[tuple[int, int, int, int, int], ...]
    #: ``act[served_fast]`` → ``(trcd, tras)``.
    act: tuple[tuple[int, int], ...]
    #: ``trp[speed_class]`` → tRP of a row in that class.
    trp: tuple[int, int]
    #: Rank-wide ACTIVATE pacing (from the slow/rank timing set).
    trrd: int
    tfaw: int
    #: Bank-group column pacing: gate flag plus the tCCD_L/tCCD_S split.
    col_pacing: bool
    tccd_l: int
    tccd_s: int
    #: Bank-group ACTIVATE pacing: gate flag plus tRRD_L.
    act_bg_pacing: bool
    trrd_l: int
    #: Fast-region predicate inputs (``served_fast = all_fast or
    #: row >= regular_rows``).
    all_fast: bool
    regular_rows: int


#: Compiled tables keyed by timing/layout content; see :func:`compile_tables`.
_TABLE_CACHE: dict[tuple, ChannelTables] = {}


def compile_tables(config: DRAMConfig) -> ChannelTables:
    """Compile (or fetch the cached) tables for one DRAM organization."""
    slow = config.slow_timing_set()
    fast = config.fast_timing_set()
    key = (slow, fast, config.all_subarrays_fast,
           config.regular_rows_per_bank)
    tables = _TABLE_CACHE.get(key)
    if tables is not None:
        return tables

    sets: tuple[TimingSet, TimingSet] = (slow, fast)
    col = tuple(
        [(t.tcl, t.tbl, t.tccd, t.trtp, 0) for t in sets]      # reads
        + [(t.tcwl, t.tbl, t.tccd, t.twtr, t.twr) for t in sets]  # writes
    )
    act = tuple((t.trcd, t.tras) for t in sets)
    # Rank pacing uses the slow set (ranks are built from it; see
    # Channel.__init__), exactly as Bank.__init__ hoists it.
    tables = ChannelTables(
        col=col,
        act=act,
        trp=(slow.trp, fast.trp),
        trrd=slow.trrd,
        tfaw=slow.tfaw,
        col_pacing=slow.tccd_s < slow.tccd,
        tccd_l=slow.tccd,
        tccd_s=slow.tccd_s,
        act_bg_pacing=slow.trrd_l > slow.trrd,
        trrd_l=slow.trrd_l,
        all_fast=config.all_subarrays_fast,
        regular_rows=config.regular_rows_per_bank,
    )
    _TABLE_CACHE[key] = tables
    return tables


def tables_for_channel(channel: Channel) -> ChannelTables:
    """The compiled timing tables for ``channel``'s organization."""
    return compile_tables(channel.config)
