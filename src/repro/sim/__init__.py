"""System assembly and the event-driven simulation loop.

* :mod:`repro.sim.config` — :class:`SystemConfig` ties together the DRAM
  organization, the caching mechanism, the core configuration, and the
  workload scaling knobs, and provides named constructors for every
  configuration the paper evaluates (Base, LISA-VILLA, FIGCache-Slow/-Fast/
  -Ideal, LL-DRAM).
* :mod:`repro.sim.system` — builds a :class:`System` (cores + caches +
  controller + DRAM + mechanism) from a configuration and a set of traces.
* :mod:`repro.sim.simulator` — the global event loop co-simulating the cores
  and the memory system.
* :mod:`repro.sim.metrics` — :class:`SimulationResult` with IPC, weighted
  speedup, in-DRAM cache hit rate, row-buffer hit rate, and energy.
"""

from repro.sim.config import (CONFIGURATION_NAMES, SystemConfig,
                              make_mechanism, make_system_config)
from repro.sim.metrics import SimulationResult, weighted_speedup
from repro.sim.simulator import Simulator
from repro.sim.system import System, run_workload

__all__ = [
    "CONFIGURATION_NAMES",
    "SimulationResult",
    "Simulator",
    "System",
    "SystemConfig",
    "make_mechanism",
    "make_system_config",
    "run_workload",
    "weighted_speedup",
]
