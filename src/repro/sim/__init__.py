"""System assembly and the event-driven simulation loop.

* :mod:`repro.sim.config` — :class:`SystemConfig` ties together the DRAM
  organization, the caching mechanism, the core configuration, and the
  workload scaling knobs; configurations live in a registry
  (:func:`register_configuration`) with named constructors for every
  configuration the paper evaluates (Base, LISA-VILLA, FIGCache-Slow/-Fast/
  -Ideal, LL-DRAM).
* :mod:`repro.sim.system` — builds a :class:`System` (cores + caches +
  controller + DRAM + mechanism) from a configuration and a set of traces.
* :mod:`repro.sim.simulator` — the global event loop co-simulating the cores
  and the memory system.
* :mod:`repro.sim.backend` — the pluggable simulation-backend registry:
  ``"python"`` (the reference loop) and ``"turbo"`` (the batch-stepped
  accelerated core, bit-identical results), selected per
  :class:`SystemConfig` or via ``REPRO_SIM_BACKEND``.
* :mod:`repro.sim.metrics` — :class:`SimulationResult` with IPC, weighted
  speedup, in-DRAM cache hit rate, row-buffer hit rate, and energy.
* :mod:`repro.sim.telemetry` — the unified telemetry layer: per-request
  latency distributions (exact p50/p95/p99/max), epoch-sampled time
  series, and pluggable probes (see ``docs/telemetry.md``).
"""

from repro.sim.backend import (BACKEND_ENV_VAR, DEFAULT_BACKEND,
                               SimulationBackend, backend_names,
                               register_backend, resolve_backend)
from repro.sim.config import (CONFIGURATION_NAMES, MECHANISM_REGISTRY,
                              ConfigurationSpec, SystemConfig,
                              configuration_names, make_mechanism,
                              make_system_config, register_configuration)
from repro.sim.metrics import SimulationResult, weighted_speedup
from repro.sim.simulator import Simulator
from repro.sim.system import System, run_workload
from repro.sim.telemetry import (LatencyHistogram, Telemetry,
                                 TelemetryConfig, TelemetryResult)

__all__ = [
    "BACKEND_ENV_VAR",
    "CONFIGURATION_NAMES",
    "ConfigurationSpec",
    "DEFAULT_BACKEND",
    "SimulationBackend",
    "LatencyHistogram",
    "MECHANISM_REGISTRY",
    "SimulationResult",
    "Simulator",
    "System",
    "SystemConfig",
    "Telemetry",
    "TelemetryConfig",
    "TelemetryResult",
    "backend_names",
    "configuration_names",
    "register_backend",
    "resolve_backend",
    "make_mechanism",
    "make_system_config",
    "register_configuration",
    "run_workload",
    "weighted_speedup",
]
