"""System assembly and the one-call workload runner.

:class:`System` wires a :class:`~repro.sim.config.SystemConfig` and a set of
per-core traces into cores, caches, the memory controller, the DRAM device,
and the caching mechanism, runs the event-driven simulation, and produces a
:class:`~repro.sim.metrics.SimulationResult` including the energy breakdown.
"""

from __future__ import annotations

from repro.controller.controller import MemoryController
from repro.cpu.core import TraceCore
from repro.dram.device import DRAMDevice
from repro.energy.system_energy import (SystemActivity, SystemEnergyModel,
                                         SystemEnergyParams)
from repro.sim.backend import resolve_backend
from repro.sim.config import SystemConfig, make_mechanism
from repro.sim.metrics import CoreResult, SimulationResult
from repro.sim.simulator import SimulatorLimits
from repro.sim.telemetry import Telemetry, TelemetryResult
from repro.workloads.trace import TraceRecord


class System:
    """One fully assembled simulated system."""

    def __init__(self, config: SystemConfig,
                 traces: list[list[TraceRecord]],
                 energy_params: SystemEnergyParams | None = None,
                 limits: SimulatorLimits | None = None,
                 tracer=None):
        if not traces:
            raise ValueError("at least one per-core trace is required")
        self.config = config
        self.device = DRAMDevice(config.dram,
                                 refresh_enabled=config.refresh_enabled,
                                 track_row_activations=config.track_row_activations)
        self.mechanisms = make_mechanism(config)
        self.controller = MemoryController(self.device, self.mechanisms,
                                           config.scheduler)
        self.cores = [TraceCore(core_id, trace, config.core)
                      for core_id, trace in enumerate(traces)]
        if energy_params is None and config.dram_energy is not None:
            # Per-standard DRAM power table from the device catalog; the
            # non-DRAM component parameters stay at their defaults.
            energy_params = SystemEnergyParams(dram=config.dram_energy)
        self.energy_model = SystemEnergyModel(energy_params)
        self._limits = limits
        #: Optional event tracer (see :mod:`repro.sim.tracing`).  A run-time
        #: observer, not part of :class:`SystemConfig` — it never enters the
        #: config digest and never changes simulated results.
        self.tracer = tracer
        if tracer is not None:
            tracer.install(self)
        #: Simulator events processed by the most recent :meth:`run` call
        #: (used by the perf benchmark harness to report events/sec).
        self.processed_events = 0

    def run(self, workload_name: str = "workload") -> SimulationResult:
        """Simulate the workload to completion and gather all metrics."""
        telemetry = None
        if self.config.telemetry is not None:
            telemetry = Telemetry(self.config.telemetry, self.cores,
                                  self.controller, self.mechanisms)
        backend = resolve_backend(self.config.backend)
        simulator = backend.create(self.cores, self.controller, self._limits,
                                   telemetry=telemetry)
        simulator.run()
        self.processed_events = simulator.processed_events

        core_results = [
            CoreResult(core_id=core.core_id,
                       instructions=core.stats.instructions,
                       cycles=max(core.stats.finish_cycle, 1),
                       llc_misses=(core.stats.llc_miss_loads
                                   + core.stats.llc_miss_stores),
                       memory_instructions=core.stats.memory_instructions)
            for core in self.cores
        ]
        total_cycles = max(core.cycles for core in core_results)
        clock_ghz = self.config.dram.cpu_clock_ghz
        elapsed_ns = total_cycles / clock_ghz

        counters = self.device.total_counters()
        cache_lookups = sum(m.stats.cache_lookups for m in self.mechanisms)
        cache_hits = sum(m.stats.cache_hits for m in self.mechanisms)
        relocation_ops = sum(m.stats.relocation_operations
                             for m in self.mechanisms)
        relocation_cycles = sum(m.stats.relocation_cycles
                                for m in self.mechanisms)
        hit_rate = cache_hits / cache_lookups if cache_lookups else 0.0

        result = SimulationResult(
            configuration=self.config.name,
            workload=workload_name,
            cores=core_results,
            total_cycles=total_cycles,
            elapsed_ns=elapsed_ns,
            dram_counters=counters,
            in_dram_cache_hit_rate=hit_rate,
            cache_lookups=cache_lookups,
            cache_hits=cache_hits,
            average_read_latency_cycles=self.controller.average_read_latency(),
            memory_reads=self.controller.completed_reads,
            memory_writes=self.controller.completed_writes,
            relocation_operations=relocation_ops,
            relocation_cycles=relocation_cycles,
        )
        if telemetry is not None:
            result.telemetry = TelemetryResult(
                epoch_cycles=telemetry.epoch_cycles,
                cpu_clock_ghz=clock_ghz,
                read_latency=self.controller.read_latency_histogram(),
                write_latency=self.controller.write_latency_histogram(),
                epochs=telemetry.series,
            )
        result.energy = self._compute_energy(result)
        return result

    def _compute_energy(self, result: SimulationResult):
        l1l2_accesses = sum(core.hierarchy.l1.hits + core.hierarchy.l1.misses
                            + core.hierarchy.l2.hits + core.hierarchy.l2.misses
                            for core in self.cores)
        llc_accesses = sum(core.hierarchy.llc.hits + core.hierarchy.llc.misses
                           for core in self.cores)
        offchip_blocks = result.memory_reads + result.memory_writes
        activity = SystemActivity(
            elapsed_ns=result.elapsed_ns,
            num_cores=len(self.cores),
            num_channels=self.config.dram.channels,
            instructions=result.instructions,
            l1l2_accesses=l1l2_accesses,
            llc_accesses=llc_accesses,
            offchip_blocks=offchip_blocks,
            dram_counters=result.dram_counters,
            has_tag_store=self.config.name not in ("Base", "LL-DRAM"),
        )
        return self.energy_model.energy(activity)


def run_workload(config: SystemConfig, traces: list[list[TraceRecord]],
                 workload_name: str = "workload",
                 energy_params: SystemEnergyParams | None = None,
                 limits: SimulatorLimits | None = None,
                 tracer=None) -> SimulationResult:
    """Build a system for ``config``, run ``traces``, and return the result."""
    system = System(config, traces, energy_params=energy_params,
                    limits=limits, tracer=tracer)
    return system.run(workload_name)
