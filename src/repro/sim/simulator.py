"""Global event-driven simulation loop.

The :class:`Simulator` co-simulates the trace-driven cores and the memory
system.  Three event kinds drive it:

* ``CORE_RUN`` — a core can make progress (at the start of the simulation,
  or after a memory completion unblocked it);
* ``REQUEST_ARRIVAL`` — a memory request issued by a core reaches the memory
  controller at its issue cycle;
* ``CONTROLLER_WAKE`` — a bank that had pending work becomes free and the
  controller should try to schedule again.

Events are processed in global time order, so the memory controller always
sees request arrivals from different cores correctly interleaved.

The main loop is written for throughput: handler dispatch and the safety
limits are hoisted out of the per-event path (bound methods and limit
values live in locals), events are only pushed when they can do work
(superseded ``CONTROLLER_WAKE`` events left in the heap are dropped with an
O(1) peek at the controller's wake-up heap instead of a full wake pass),
and the current cycle is assigned directly — the event heap pops in
non-decreasing cycle order because no handler ever schedules into the past.
"""

from __future__ import annotations

import gc
import heapq
import itertools
import sys
from contextlib import contextmanager
from dataclasses import dataclass

from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest
from repro.cpu.core import TraceCore

_CORE_RUN = 0
_REQUEST_ARRIVAL = 1
_CONTROLLER_WAKE = 2

#: Nesting depth of active simulation runs in this process, with the
#: interpreter state saved when the first run entered.  The guard keeps
#: overlapping runs (nested or on other threads) from restoring the
#: cyclic-GC / switch-interval state mid-way through an outer run.
_active_runs = 0
_saved_gc_enabled = False
_saved_switch_interval = 0.0


@contextmanager
def interpreter_run_guard():
    """Suspend cyclic GC and raise the GIL switch interval for one run.

    The simulation event loops allocate heavily (requests, events,
    results) but create no reference cycles — plain reference counting
    reclaims everything.  Cyclic-GC passes triggered by the allocation
    rate would only scan the heap for nothing, so they are suspended for
    the duration of the run.  The GIL switch interval is raised for the
    same reason: the loops are single-threaded and pure Python, so
    frequent bytecode-level preemption checks buy nothing (1 s keeps any
    co-resident threads schedulable, unlike a multi-second value, while
    capturing essentially all of the benefit).  Shared by every
    simulation backend (:mod:`repro.sim.backend`); re-entrant, restoring
    the saved interpreter state only when the outermost run exits.
    """
    global _active_runs, _saved_gc_enabled, _saved_switch_interval
    if _active_runs == 0:
        _saved_gc_enabled = gc.isenabled()
        _saved_switch_interval = sys.getswitchinterval()
        gc.disable()
        sys.setswitchinterval(1.0)
    _active_runs += 1
    try:
        yield
    finally:
        _active_runs -= 1
        if _active_runs == 0:
            sys.setswitchinterval(_saved_switch_interval)
            if _saved_gc_enabled:
                gc.enable()


@dataclass
class SimulatorLimits:
    """Safety limits for one simulation run."""

    #: Hard cap on simulated cycles (guards against livelock in development).
    max_cycles: int = 5_000_000_000
    #: Hard cap on processed events.
    max_events: int = 200_000_000


class Simulator:
    """Event-driven co-simulation of cores and the memory system."""

    __slots__ = ('_cores', '_controller', '_limits', '_events', '_sequence',
                 '_now', '_scheduled_wake', '_telemetry', 'processed_events')

    def __init__(self, cores: list[TraceCore], controller: MemoryController,
                 limits: SimulatorLimits | None = None,
                 telemetry=None):
        if not cores:
            raise ValueError("at least one core is required")
        self._cores = cores
        self._controller = controller
        self._limits = limits or SimulatorLimits()
        #: Optional epoch sampler (:class:`repro.sim.telemetry.Telemetry`).
        #: The loop compares the clock against its next epoch boundary and
        #: lets it observe the system at each crossing; with telemetry off
        #: the boundary is an unreachable sentinel, so the only residual
        #: cost is one integer comparison per event.
        self._telemetry = telemetry
        self._events: list[tuple[int, int, int, object]] = []
        self._sequence = itertools.count()
        self._now = 0
        #: Cycle of the earliest CONTROLLER_WAKE event currently queued, used
        #: to avoid flooding the event heap with duplicate wake-ups.
        self._scheduled_wake: int | None = None
        self.processed_events = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    # ------------------------------------------------------------------
    # Event helpers.
    # ------------------------------------------------------------------
    def _push(self, cycle: int, kind: int, payload: object) -> None:
        heapq.heappush(self._events,
                       (cycle, next(self._sequence), kind, payload))

    def _schedule_controller_wake(self) -> None:
        wake = self._controller.next_wakeup()
        if wake is None:
            return
        if wake < self._now:
            wake = self._now
        if self._scheduled_wake is not None and self._scheduled_wake <= wake:
            return
        self._scheduled_wake = wake
        heapq.heappush(self._events,
                       (wake, next(self._sequence), _CONTROLLER_WAKE, None))

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Run until every core finishes its trace; returns the final cycle."""
        with interpreter_run_guard():
            return self._run()

    def _run(self) -> int:
        for core in self._cores:
            self._push(0, _CORE_RUN, core)

        events = self._events
        heappop = heapq.heappop
        heappush = heapq.heappush
        sequence = self._sequence
        controller = self._controller
        cores = self._cores
        max_cycles = self._limits.max_cycles
        max_events = self._limits.max_events
        #: The per-channel (wake-up heap, live wake cycle) pairs, hoisted so
        #: the loop peeks the lazily-invalidated heaps directly instead of
        #: calling MemoryController.next_wakeup after every event (the
        #: invalidation rule matches ChannelController.next_wakeup: a head
        #: whose cycle disagrees with the live dict is stale).  The
        #: snapshot stays live by the wakeup_view accessor contract (no
        #: rebinding after construction), verified after the loop.
        wakeup_views = [cc.wakeup_view()
                        for cc in controller.channel_controllers]
        #: With one channel (every single-core job) wake delivery can skip
        #: the MemoryController fan-out entirely.
        single_controller = controller.channel_controllers[0] \
            if len(controller.channel_controllers) == 1 else None
        route_cache = controller._route_cache
        controller_route = controller.route
        processed = self.processed_events
        telemetry = self._telemetry
        #: Next telemetry epoch boundary; with telemetry off the sentinel
        #: sits past max_cycles (the limit check fires first), so the
        #: per-event cost of the disabled path is this one comparison.
        epoch_end = telemetry.next_epoch if telemetry is not None \
            else max_cycles + 1
        cycle = 0
        while events:
            cycle, _, kind, payload = heappop(events)
            # Events pop in non-decreasing cycle order (nothing schedules
            # into the past), so the clock advances monotonically; _now is
            # written back after the loop (nothing reads it mid-loop).
            # Limits are checked against the state *before* this event is
            # counted, so the error reports the true processed-event count.
            if cycle > max_cycles or processed >= max_events:
                self._now = cycle
                self.processed_events = processed
                self._raise_limit(cycle)
            if cycle >= epoch_end:
                # Sample every boundary crossed before this event's effects
                # apply; pure observation, so timing is unperturbed.
                epoch_end = telemetry.advance(cycle)
            processed += 1

            if kind == _REQUEST_ARRIVAL:
                # Inline MemoryController.enqueue (route probe + delegate).
                entry = route_cache.get(payload.address)
                if entry is None:
                    channel_controller = controller_route(payload)
                else:
                    payload.decoded, payload.flat_bank, channel_controller \
                        = entry
                completed = channel_controller.enqueue(payload, cycle)
                # Inline completion delivery (see _deliver_completions).
                for request in completed:
                    if request.is_write:
                        continue
                    core = cores[request.core_id]
                    completion_cycle = request.completion_cycle
                    if core.notify_completion(request.address,
                                              completion_cycle):
                        heappush(events, (completion_cycle, next(sequence),
                                          _CORE_RUN, core))
            elif kind == _CORE_RUN:
                # Inline _handle_core_run: turn the core's issued requests
                # into REQUEST_ARRIVAL events.
                issued_requests = payload.run_requests(cycle)
                if issued_requests:
                    core_id = payload.core_id
                    for issue_cycle, address, is_write in issued_requests:
                        heappush(events,
                                 (issue_cycle, next(sequence),
                                  _REQUEST_ARRIVAL,
                                  MemoryRequest(core_id, address, is_write,
                                                issue_cycle)))
                continue
            else:
                # CONTROLLER_WAKE, inlined because wake events dominate
                # some workloads.
                if self._scheduled_wake is not None \
                        and self._scheduled_wake <= cycle:
                    self._scheduled_wake = None
                # A wake event is stale when an earlier wake already
                # serviced the banks it was scheduled for (pushing an
                # earlier CONTROLLER_WAKE cannot remove the superseded one
                # from the heap).  Peeking at the wake-up heaps is O(1); a
                # full wake pass would walk every channel's pending banks
                # just to find nothing due.
                next_due = None
                for heap, live in wakeup_views:
                    while heap:
                        head = heap[0]
                        if live.get(head[1]) == head[0]:
                            if next_due is None or head[0] < next_due:
                                next_due = head[0]
                            break
                        heappop(heap)
                if next_due is None:
                    continue
                if next_due <= cycle:
                    if single_controller is not None:
                        woken = single_controller.wake(cycle)
                    else:
                        woken = controller.wake(cycle)
                    for request in woken:
                        if request.is_write:
                            continue
                        core = cores[request.core_id]
                        completion_cycle = request.completion_cycle
                        if core.notify_completion(request.address,
                                                  completion_cycle):
                            heappush(events,
                                     (completion_cycle, next(sequence),
                                      _CORE_RUN, core))
            # Inline _schedule_controller_wake: push a CONTROLLER_WAKE for
            # the earliest pending bank unless one is already queued at or
            # before that cycle.
            wake = None
            for heap, live in wakeup_views:
                while heap:
                    head = heap[0]
                    if live.get(head[1]) == head[0]:
                        if wake is None or head[0] < wake:
                            wake = head[0]
                        break
                    heappop(heap)
            if wake is not None:
                if wake < cycle:
                    wake = cycle
                scheduled = self._scheduled_wake
                if scheduled is None or scheduled > wake:
                    self._scheduled_wake = wake
                    heappush(events,
                             (wake, next(sequence), _CONTROLLER_WAKE, None))
        self._now = max(self._now, cycle)
        self.processed_events = processed
        if __debug__:
            for (heap, live), cc in zip(wakeup_views,
                                        controller.channel_controllers):
                current_heap, current_live = cc.wakeup_view()
                assert heap is current_heap and live is current_live, (
                    "ChannelController rebound its wake-up structures "
                    "mid-run; the hoisted wakeup_views snapshot went "
                    "stale (see ChannelController.wakeup_view)")

        # Flush any writes still sitting in the controller queues so that
        # command counts and energy reflect the whole workload.
        finish_cycle = max((core.stats.finish_cycle for core in self._cores),
                          default=self._now)
        drain_cycle = self._controller.drain_all(self._now)
        self._now = max(self._now, drain_cycle, finish_cycle)
        if telemetry is not None:
            # Close the trailing partial epoch (includes the write drain).
            telemetry.finalize(self._now)
        return finish_cycle

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------
    def _deliver_completions(self, completed: list[MemoryRequest]) -> None:
        cores = self._cores
        events = self._events
        sequence = self._sequence
        for request in completed:
            if request.is_write:
                continue
            core = cores[request.core_id]
            completion_cycle = request.completion_cycle
            if core.notify_completion(request.address, completion_cycle):
                heapq.heappush(events, (completion_cycle, next(sequence),
                                        _CORE_RUN, core))

    def _raise_limit(self, cycle: int) -> None:
        """Report which safety limit the next event would exceed."""
        if cycle > self._limits.max_cycles:
            raise RuntimeError(
                f"simulation exceeded {self._limits.max_cycles} cycles")
        raise RuntimeError(
            f"simulation exceeded {self._limits.max_events} events "
            f"({self.processed_events} processed)")
