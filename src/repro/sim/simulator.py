"""Global event-driven simulation loop.

The :class:`Simulator` co-simulates the trace-driven cores and the memory
system.  Three event kinds drive it:

* ``CORE_RUN`` — a core can make progress (at the start of the simulation,
  or after a memory completion unblocked it);
* ``REQUEST_ARRIVAL`` — a memory request issued by a core reaches the memory
  controller at its issue cycle;
* ``CONTROLLER_WAKE`` — a bank that had pending work becomes free and the
  controller should try to schedule again.

Events are processed in global time order, so the memory controller always
sees request arrivals from different cores correctly interleaved.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest
from repro.cpu.core import TraceCore

_CORE_RUN = 0
_REQUEST_ARRIVAL = 1
_CONTROLLER_WAKE = 2


@dataclass
class SimulatorLimits:
    """Safety limits for one simulation run."""

    #: Hard cap on simulated cycles (guards against livelock in development).
    max_cycles: int = 5_000_000_000
    #: Hard cap on processed events.
    max_events: int = 200_000_000


class Simulator:
    """Event-driven co-simulation of cores and the memory system."""

    def __init__(self, cores: list[TraceCore], controller: MemoryController,
                 limits: SimulatorLimits | None = None):
        if not cores:
            raise ValueError("at least one core is required")
        self._cores = cores
        self._controller = controller
        self._limits = limits or SimulatorLimits()
        self._events: list[tuple[int, int, int, object]] = []
        self._sequence = itertools.count()
        self._now = 0
        #: Cycle of the earliest CONTROLLER_WAKE event currently queued, used
        #: to avoid flooding the event heap with duplicate wake-ups.
        self._scheduled_wake: int | None = None
        self.processed_events = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    # ------------------------------------------------------------------
    # Event helpers.
    # ------------------------------------------------------------------
    def _push(self, cycle: int, kind: int, payload: object) -> None:
        heapq.heappush(self._events,
                       (cycle, next(self._sequence), kind, payload))

    def _schedule_controller_wake(self) -> None:
        wake = self._controller.next_wakeup()
        if wake is None:
            return
        wake = max(wake, self._now)
        if self._scheduled_wake is not None and self._scheduled_wake <= wake:
            return
        self._scheduled_wake = wake
        self._push(wake, _CONTROLLER_WAKE, None)

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Run until every core finishes its trace; returns the final cycle."""
        for core in self._cores:
            self._push(0, _CORE_RUN, core)

        finish_cycle = 0
        while self._events:
            cycle, _, kind, payload = heapq.heappop(self._events)
            self._now = max(self._now, cycle)
            self.processed_events += 1
            self._check_limits()

            if kind == _CORE_RUN:
                self._handle_core_run(payload, cycle)
            elif kind == _REQUEST_ARRIVAL:
                self._handle_arrival(payload, cycle)
            else:
                self._handle_controller_wake(cycle)

        # Flush any writes still sitting in the controller queues so that
        # command counts and energy reflect the whole workload.
        finish_cycle = max((core.stats.finish_cycle for core in self._cores),
                          default=self._now)
        drain_cycle = self._controller.drain_all(self._now)
        self._now = max(self._now, drain_cycle, finish_cycle)
        return finish_cycle

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------
    def _handle_core_run(self, core: TraceCore, cycle: int) -> None:
        result = core.run(cycle)
        for issued in result.requests:
            request = MemoryRequest(core_id=core.core_id,
                                    address=issued.address,
                                    is_write=issued.is_write,
                                    arrival_cycle=issued.issue_cycle)
            self._push(issued.issue_cycle, _REQUEST_ARRIVAL, request)

    def _handle_arrival(self, request: MemoryRequest, cycle: int) -> None:
        completed = self._controller.enqueue(request, cycle)
        self._deliver_completions(completed)
        self._schedule_controller_wake()

    def _handle_controller_wake(self, cycle: int) -> None:
        if self._scheduled_wake is not None and self._scheduled_wake <= cycle:
            self._scheduled_wake = None
        completed = self._controller.wake(cycle)
        self._deliver_completions(completed)
        self._schedule_controller_wake()

    def _deliver_completions(self, completed: list[MemoryRequest]) -> None:
        for request in completed:
            if request.is_write:
                continue
            core = self._cores[request.core_id]
            can_progress = core.notify_completion(request.address,
                                                  request.completion_cycle)
            if can_progress:
                self._push(request.completion_cycle, _CORE_RUN, core)

    def _check_limits(self) -> None:
        if self._now > self._limits.max_cycles:
            raise RuntimeError(
                f"simulation exceeded {self._limits.max_cycles} cycles")
        if self.processed_events > self._limits.max_events:
            raise RuntimeError(
                f"simulation exceeded {self._limits.max_events} events")
