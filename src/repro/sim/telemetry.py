"""Unified telemetry: latency distributions, epoch time series, probes.

The paper's evaluation reports end-of-run means (weighted speedup, average
memory latency, row-hit rate).  This module adds the *distributional* view
those means cannot express:

* :class:`LatencyHistogram` — per-request read/write latency distributions
  recorded at request completion.  Counts are kept exactly per distinct
  latency value (DRAM latencies quantise to a small set of timing sums, so
  the map stays tiny), which makes p50/p95/p99/max *exact* rather than
  bucket-resolution estimates; :meth:`LatencyHistogram.buckets` provides
  the power-of-two rollup for display and plotting.
* :class:`Telemetry` — a live epoch sampler driven from the simulator
  loop.  Every ``epoch_cycles`` simulated cycles it snapshots the
  cumulative counters of each stats producer (cores, channel controllers,
  DRAM command counters, caching mechanisms) and stores per-epoch deltas:
  IPC, row-buffer hit rate, in-DRAM cache hit rate, per-channel queue
  depth, and read/write traffic.  Custom probes can be registered with
  :meth:`Telemetry.add_probe`.
* :class:`TelemetryResult` — the versioned, JSON-serialisable section
  attached to :class:`~repro.sim.metrics.SimulationResult` when telemetry
  is enabled (``SystemConfig.telemetry``), and round-tripped by the
  experiment engine's persistent cache.

Observation never perturbs simulation: every sampler only *reads*
cumulative counters the simulation already maintains, so results are
bit-identical with telemetry on or off (guarded by the golden fixtures).
When telemetry is off, the simulator's only residual cost is one integer
comparison per event against an unreachable epoch sentinel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Bump when the serialised telemetry section changes shape; readers treat
#: unknown versions as absent rather than misreading them.
TELEMETRY_SCHEMA_VERSION = 1

#: Default epoch length for time-series sampling, in CPU cycles.
DEFAULT_EPOCH_CYCLES = 50_000


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for one simulation's telemetry collection.

    Attaching a (non-``None``) config to ``SystemConfig.telemetry`` turns
    telemetry on: the result gains a :class:`TelemetryResult` section and
    the simulator samples the epoch time series.  Latency histograms are
    maintained unconditionally by the channel controllers (they are the
    storage behind ``average_read_latency``), so enabling telemetry only
    changes what is *reported*, never what is simulated.
    """

    #: Epoch length for the time series, in CPU cycles.
    epoch_cycles: int = DEFAULT_EPOCH_CYCLES

    def __post_init__(self) -> None:
        if self.epoch_cycles <= 0:
            raise ValueError(
                f"epoch_cycles must be positive, got {self.epoch_cycles}")


class LatencyHistogram:
    """Exact latency distribution over completed requests.

    Backed by a plain ``{latency_cycles: count}`` dict so the recording
    hot path (the channel controller's completion bookkeeping) is a single
    dict upsert.  Totals are integers, so means derived here are
    bit-identical to the former running-sum plumbing they replaced.
    """

    __slots__ = ('counts',)

    def __init__(self, counts: dict[int, int] | None = None):
        #: Exact per-latency counts; shared (not copied) when given, so a
        #: controller's live dict can be wrapped without cost.
        self.counts = {} if counts is None else counts

    # ------------------------------------------------------------------
    # Recording / combining.
    # ------------------------------------------------------------------
    def record(self, latency: int, count: int = 1) -> None:
        """Record ``count`` completions observing ``latency`` cycles."""
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        counts = self.counts
        counts[latency] = counts.get(latency, 0) + count

    def merge(self, other: "LatencyHistogram") -> None:
        """Accumulate another histogram into this one."""
        counts = self.counts
        for latency, count in other.counts.items():
            counts[latency] = counts.get(latency, 0) + count

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total completions recorded."""
        return sum(self.counts.values())

    @property
    def total(self) -> int:
        """Sum of all recorded latencies (exact integer)."""
        return sum(latency * count for latency, count in self.counts.items())

    @property
    def mean(self) -> float:
        """Mean latency in cycles (0.0 when empty)."""
        count = self.count
        if count == 0:
            return 0.0
        return self.total / count

    @property
    def min(self) -> int:
        """Smallest recorded latency (0 when empty)."""
        return min(self.counts) if self.counts else 0

    @property
    def max(self) -> int:
        """Largest recorded latency (0 when empty)."""
        return max(self.counts) if self.counts else 0

    def percentile(self, fraction: float) -> int:
        """Exact nearest-rank percentile, e.g. ``percentile(0.99)``.

        Returns the latency of the request at rank
        ``ceil(fraction * count)`` (1-indexed) in sorted order — the
        standard nearest-rank definition, exact because counts are exact.
        Returns 0 for an empty histogram.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        count = self.count
        if count == 0:
            return 0
        # Nearest rank = ceil(fraction * count); rounding first keeps float
        # noise (0.99 * 100 == 99.00000000000001) from inflating the rank.
        rank = math.ceil(round(fraction * count, 9))
        rank = max(1, min(rank, count))
        seen = 0
        for latency in sorted(self.counts):
            seen += self.counts[latency]
            if seen >= rank:
                return latency
        return self.max  # pragma: no cover - unreachable (seen ends == count)

    def summary(self) -> dict:
        """The headline statistics: count, mean, p50/p95/p99, max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.max,
        }

    def buckets(self) -> list[tuple[int, int]]:
        """Power-of-two rollup: ``(inclusive lower bound, count)`` pairs.

        Bucket *i* covers latencies in ``[2**(i-1), 2**i)`` (bucket 0 is
        exactly latency 0, bucket 1 exactly latency 1); empty buckets
        inside the occupied range are included so plots get a contiguous
        axis.
        """
        if not self.counts:
            return []
        by_bucket: dict[int, int] = {}
        for latency, count in self.counts.items():
            index = latency.bit_length()
            by_bucket[index] = by_bucket.get(index, 0) + count
        highest = max(by_bucket)
        return [(0 if index == 0 else 1 << (index - 1),
                 by_bucket.get(index, 0))
                for index in range(highest + 1)]

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON form: sorted ``[latency, count]`` pairs."""
        return {"counts": [[latency, self.counts[latency]]
                           for latency in sorted(self.counts)]}

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        """Rebuild from :meth:`to_dict` output (tolerates missing keys)."""
        return cls({int(latency): int(count)
                    for latency, count in data.get("counts", [])})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LatencyHistogram(count={self.count}, mean={self.mean:.1f}, "
                f"max={self.max})")


#: Column order of the epoch time series (one list per column; kept in one
#: place so serialisation, sampling, and the timeline view cannot drift).
EPOCH_COLUMNS = ("end_cycle", "instructions", "reads", "writes",
                 "row_hits", "row_misses", "row_conflicts",
                 "cache_lookups", "cache_hits")


@dataclass
class EpochSeries:
    """Columnar per-epoch deltas sampled by :class:`Telemetry`.

    Each list holds one value per epoch.  ``end_cycle`` is the epoch's end
    boundary (the final epoch may be partial: it ends at the simulation's
    last cycle).  ``queue_depths`` holds one ``[per-channel depth]`` list
    per epoch — an instantaneous read+write queue occupancy sampled at the
    epoch boundary, not a delta.  ``extra`` holds one list per registered
    probe name.
    """

    end_cycle: list[int] = field(default_factory=list)
    instructions: list[int] = field(default_factory=list)
    reads: list[int] = field(default_factory=list)
    writes: list[int] = field(default_factory=list)
    row_hits: list[int] = field(default_factory=list)
    row_misses: list[int] = field(default_factory=list)
    row_conflicts: list[int] = field(default_factory=list)
    cache_lookups: list[int] = field(default_factory=list)
    cache_hits: list[int] = field(default_factory=list)
    queue_depths: list[list[int]] = field(default_factory=list)
    extra: dict[str, list] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.end_cycle)

    def rows(self, cpu_clock_ghz: float = 0.0,
             block_bytes: int = 64) -> list[dict]:
        """Derived per-epoch metrics, one dict per epoch.

        Rates use each epoch's true span, derived from consecutive
        ``end_cycle`` boundaries (the final epoch may be partial).
        ``read_gbps``/``write_gbps`` are only present when a positive
        ``cpu_clock_ghz`` is supplied.
        """
        rows = []
        previous_end = 0
        for index in range(len(self.end_cycle)):
            end = self.end_cycle[index]
            span = max(end - previous_end, 1)
            previous_end = end
            outcomes = (self.row_hits[index] + self.row_misses[index]
                        + self.row_conflicts[index])
            lookups = self.cache_lookups[index]
            row = {
                "end_cycle": end,
                "ipc": self.instructions[index] / span,
                "row_buffer_hit_rate":
                    self.row_hits[index] / outcomes if outcomes else 0.0,
                "cache_hit_rate":
                    self.cache_hits[index] / lookups if lookups else 0.0,
                "reads": self.reads[index],
                "writes": self.writes[index],
                "queue_depth_max": max(self.queue_depths[index], default=0),
                "queue_depths": self.queue_depths[index],
            }
            if cpu_clock_ghz > 0.0:
                seconds = span / cpu_clock_ghz / 1e9
                row["read_gbps"] = self.reads[index] * block_bytes \
                    / seconds / 1e9
                row["write_gbps"] = self.writes[index] * block_bytes \
                    / seconds / 1e9
            for name, values in self.extra.items():
                row[name] = values[index]
            rows.append(row)
        return rows

    def to_dict(self) -> dict:
        """JSON-serialisable columnar form."""
        data = {column: getattr(self, column) for column in EPOCH_COLUMNS}
        data["queue_depths"] = self.queue_depths
        data["extra"] = self.extra
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EpochSeries":
        """Rebuild from :meth:`to_dict` output (tolerates missing keys)."""
        series = cls(**{column: list(data.get(column, []))
                        for column in EPOCH_COLUMNS})
        series.queue_depths = [list(depths)
                               for depths in data.get("queue_depths", [])]
        series.extra = {name: list(values)
                        for name, values in (data.get("extra") or {}).items()}
        return series


class Telemetry:
    """Live epoch sampler wired to one simulated system's stats producers.

    Built by :class:`~repro.sim.system.System` when the configuration
    enables telemetry and handed to the simulator, whose event loop calls
    :meth:`advance` whenever the clock crosses the next epoch boundary and
    :meth:`finalize` once after the end-of-run write drain.  Sampling is
    pure observation — cumulative counters are read, never written — so
    enabling telemetry cannot change any simulated outcome.
    """

    __slots__ = ('epoch_cycles', 'next_epoch', 'series', '_cores',
                 '_channel_controllers', '_channels', '_mechanisms',
                 '_probes', '_last')

    def __init__(self, config: TelemetryConfig, cores, controller,
                 mechanisms) -> None:
        self.epoch_cycles = config.epoch_cycles
        #: End boundary of the epoch currently being accumulated.  The
        #: simulator compares the event clock against this every event.
        self.next_epoch = config.epoch_cycles
        self.series = EpochSeries()
        self._cores = list(cores)
        self._channel_controllers = list(controller.channel_controllers)
        self._channels = [channel_controller.channel
                          for channel_controller in self._channel_controllers]
        self._mechanisms = list(mechanisms)
        #: Registered ``(name, callable)`` probes, sampled every epoch.
        self._probes: list[tuple[str, object]] = []
        #: Cumulative snapshot at the previous epoch boundary, in
        #: EPOCH_COLUMNS order minus end_cycle.
        self._last = (0,) * (len(EPOCH_COLUMNS) - 1)

    def add_probe(self, name: str, probe) -> None:
        """Register a custom per-epoch probe.

        ``probe(end_cycle)`` is called at every epoch boundary; its return
        value is appended to ``series.extra[name]``.  Probes must be pure
        observers (JSON-serialisable return values, no simulation-state
        mutation).  Registering after sampling has started would desync
        the column lengths, so it is rejected.
        """
        if any(existing == name for existing, _ in self._probes):
            raise ValueError(f"probe {name!r} already registered")
        if len(self.series):
            raise ValueError("cannot add probes once sampling has started")
        self._probes.append((name, probe))
        self.series.extra[name] = []

    # ------------------------------------------------------------------
    # Sampling (called from the simulator loop).
    # ------------------------------------------------------------------
    def advance(self, cycle: int) -> int:
        """Sample every epoch boundary at or before ``cycle``.

        Returns the new next-epoch boundary for the simulator's inline
        check.  When the clock jumps several epochs between events, one
        row is emitted per boundary: the first carries the whole delta,
        the rest are zero (nothing happened during them).
        """
        while self.next_epoch <= cycle:
            self._sample(self.next_epoch)
            self.next_epoch += self.epoch_cycles
        return self.next_epoch

    def finalize(self, cycle: int) -> None:
        """Sample the trailing partial epoch after the end-of-run drain."""
        series = self.series
        if not series.end_cycle or series.end_cycle[-1] < cycle:
            self._sample(cycle)

    def _sample(self, end_cycle: int) -> None:
        # Every cumulative value is read through the producers' uniform
        # ``telemetry_counters()`` protocol, so the counter names here are
        # the protocol's names — a renamed counter fails loudly (KeyError)
        # instead of silently sampling stale attributes.  Sampling runs
        # once per epoch, so the snapshot dicts cost nothing that matters.
        instructions = 0
        for core in self._cores:
            instructions += core.stats.telemetry_counters()["instructions"]
        reads = 0
        writes = 0
        for channel_controller in self._channel_controllers:
            counters = channel_controller.telemetry_counters()
            reads += counters["completed_reads"]
            writes += counters["completed_writes"]
        row_hits = 0
        row_misses = 0
        row_conflicts = 0
        for channel in self._channels:
            counters = channel.counters.telemetry_counters()
            row_hits += counters["row_hits"]
            row_misses += counters["row_misses"]
            row_conflicts += counters["row_conflicts"]
        lookups = 0
        hits = 0
        for mechanism in self._mechanisms:
            counters = mechanism.stats.telemetry_counters()
            lookups += counters["cache_lookups"]
            hits += counters["cache_hits"]
        current = (instructions, reads, writes, row_hits, row_misses,
                   row_conflicts, lookups, hits)
        last = self._last
        self._last = current
        series = self.series
        series.end_cycle.append(end_cycle)
        series.instructions.append(current[0] - last[0])
        series.reads.append(current[1] - last[1])
        series.writes.append(current[2] - last[2])
        series.row_hits.append(current[3] - last[3])
        series.row_misses.append(current[4] - last[4])
        series.row_conflicts.append(current[5] - last[5])
        series.cache_lookups.append(current[6] - last[6])
        series.cache_hits.append(current[7] - last[7])
        series.queue_depths.append(
            [channel_controller.read_queue_occupancy
             + channel_controller.write_queue_occupancy
             for channel_controller in self._channel_controllers])
        for name, probe in self._probes:
            series.extra[name].append(probe(end_cycle))


@dataclass
class TelemetryResult:
    """The versioned telemetry section of a simulation result.

    Attached to :class:`~repro.sim.metrics.SimulationResult` when the
    system configuration enables telemetry; serialised into the
    experiment engine's persistent cache alongside the scalar metrics.
    """

    #: Epoch length the time series was sampled at, in CPU cycles.
    epoch_cycles: int
    #: CPU clock (GHz) — lets views convert cycle counts to time/bandwidth.
    cpu_clock_ghz: float
    #: Distribution of read latencies (arrival to data return), cycles.
    read_latency: LatencyHistogram
    #: Distribution of write latencies (arrival to service), cycles.
    write_latency: LatencyHistogram
    #: The epoch time series.
    epochs: EpochSeries
    #: Serialisation schema version.
    version: int = TELEMETRY_SCHEMA_VERSION

    def read_percentiles(self) -> dict:
        """Headline read-latency statistics (count/mean/p50/p95/p99/max)."""
        return self.read_latency.summary()

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the persistent result cache)."""
        return {
            "version": self.version,
            "epoch_cycles": self.epoch_cycles,
            "cpu_clock_ghz": self.cpu_clock_ghz,
            "read_latency": self.read_latency.to_dict(),
            "write_latency": self.write_latency.to_dict(),
            "epochs": self.epochs.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryResult | None":
        """Rebuild from :meth:`to_dict` output.

        Returns ``None`` for payloads from a *newer* schema than this code
        understands: the caller then behaves as if telemetry was absent
        rather than misreading the section.
        """
        version = data.get("version", TELEMETRY_SCHEMA_VERSION)
        if version > TELEMETRY_SCHEMA_VERSION:
            return None
        return cls(
            epoch_cycles=data.get("epoch_cycles", DEFAULT_EPOCH_CYCLES),
            cpu_clock_ghz=data.get("cpu_clock_ghz", 0.0),
            read_latency=LatencyHistogram.from_dict(
                data.get("read_latency") or {}),
            write_latency=LatencyHistogram.from_dict(
                data.get("write_latency") or {}),
            epochs=EpochSeries.from_dict(data.get("epochs") or {}),
            version=version,
        )
