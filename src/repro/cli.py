"""Command-line interface: run the paper's experiments outside pytest.

``python -m repro`` exposes the experiment engine directly:

* ``run-figure N``  — regenerate one of Figures 7–15, or a named study
  such as ``dram-types`` (the cross-standard sensitivity sweep) or
  ``latency`` (read-latency percentiles per configuration).
* ``run-static NAME`` — regenerate a table/section study (table1, table2,
  reloc-timing, overhead, rowhammer).
* ``timeline WORKLOAD`` — per-epoch time series (IPC, row-buffer and
  in-DRAM cache hit rates, queue depth, bandwidth) for one single-core
  workload, plus the read-latency percentile summary.
* ``sweep``         — a design-space sweep over FIGCache knobs (cross
  product of segment sizes and cache capacities).
* ``standards list`` / ``standards smoke`` — show the DRAM device
  catalog, or run one tiny validation simulation per profile.
* ``cache stats`` / ``cache clear`` — inspect or wipe the persistent
  result cache.
* ``bench``         — time the simulator itself on the figure-7 workload
  set and emit ``benchmarks/perf/BENCH_<rev>.json``.
* ``trace WORKLOAD`` — record an event-level simulation trace (DRAM
  commands, request lifecycles, mechanism events) and export it as
  Chrome trace-event JSON, viewable at https://ui.perfetto.dev.
* ``metrics``       — a unified health-metrics snapshot (cache + host)
  as JSON or Prometheus text exposition.
* ``list``          — show every runnable experiment and device profile.

``--jobs N`` fans independent simulations across N worker processes;
``--cache-dir`` (default ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)
persists results so re-runs are incremental.  Serial and parallel runs
produce bit-identical tables.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.dram.standards import list_profiles
from repro.experiments import engine
from repro.experiments.engine import default_cache_dir
from repro.experiments.figures import FIGURES, NAMED_FIGURES
from repro.experiments.runner import (ExperimentScale, format_table,
                                      geometric_mean, multicore_suite)
from repro.experiments.static import STATIC_EXPERIMENTS
from repro.sim.config import configuration_names
from repro.sim.telemetry import DEFAULT_EPOCH_CYCLES

#: Every ``run-figure`` choice: numbered figures plus named studies.
FIGURE_CHOICES = tuple([str(number) for number in sorted(FIGURES)]
                       + sorted(NAMED_FIGURES))

#: Named experiment scales selectable with ``--scale``.
SCALES = {
    "tiny": ExperimentScale.tiny,
    "smoke": ExperimentScale.smoke,
    "bench": ExperimentScale.bench,
    "paper": ExperimentScale,
}


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result cache directory "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/repro; "
                             "'none' disables persistence)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="paper",
                        help="experiment scale (default: paper)")
    parser.add_argument("--keep-going", action="store_true",
                        help="retry failed jobs, then skip them instead "
                             "of aborting the batch (failure policy "
                             "retry_then_skip); the run still exits "
                             "nonzero if anything was skipped")


def _configure_engine(args) -> "engine.JobExecutor":
    if args.cache_dir == "none":
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = str(default_cache_dir())
    policy = "retry_then_skip" if getattr(args, "keep_going", False) \
        else None
    return engine.configure(jobs=args.jobs, cache_dir=cache_dir,
                            failure_policy=policy)


def _finish_batch(executor) -> int:
    """Exit code for a batch that ran to completion.

    Under ``--keep-going`` a batch can finish with skipped jobs; the
    summary goes to stderr and the exit code turns nonzero so scripts
    notice, even though the (partial) table printed fine.
    """
    report = executor.last_report
    if report is None or not report.failures:
        return 0
    print(f"error: batch finished with failures: {report.summary()}",
          file=sys.stderr)
    return 1


def _add_progress_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--progress", action="store_true",
                        help="live engine progress line on stderr")
    parser.add_argument("--progress-file", default=None, metavar="FILE",
                        help="write engine progress events to FILE as "
                             "JSON lines (see docs/observability.md)")


def _progress_sink(args) -> "engine.ProgressSink | None":
    """Build the progress sink the CLI flags ask for (or ``None``)."""
    sinks = []
    if getattr(args, "progress", False):
        sinks.append(engine.StderrLineSink())
    if getattr(args, "progress_file", None):
        sinks.append(engine.JsonlFileSink(args.progress_file))
    if not sinks:
        return None
    return sinks[0] if len(sinks) == 1 else engine.TeeSink(*sinks)


def _report(data: dict, executor, elapsed_s: float) -> None:
    title = data.get("figure") or data.get("table") or data.get("section")
    print(format_table(f"{title}: {data.get('metric', '')}",
                       data["columns"], data["rows"]))
    print(f"\n{executor.simulations_executed} simulations executed, "
          f"{executor.cache_hits} cache hits, "
          f"{executor.jobs} worker(s), {elapsed_s:.1f}s")


def _cmd_run_figure(args) -> int:
    executor = _configure_engine(args)
    sink = _progress_sink(args)
    executor.progress = sink
    if args.figure in NAMED_FIGURES:
        runner = NAMED_FIGURES[args.figure]
    else:
        runner = FIGURES[int(args.figure)]
    start = time.perf_counter()
    try:
        data = runner(SCALES[args.scale]())
    finally:
        if sink is not None:
            sink.close()
            executor.progress = None
    _report(data, executor, time.perf_counter() - start)
    return _finish_batch(executor)


def _cmd_run_static(args) -> int:
    executor = _configure_engine(args)
    runner = STATIC_EXPERIMENTS[args.name]
    start = time.perf_counter()
    if args.name == "rowhammer":
        data = runner(SCALES[args.scale]())
    else:
        data = runner()
    _report(data, executor, time.perf_counter() - start)
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.engine import SimJob

    if not args.segment_blocks or not args.cache_rows:
        raise ValueError("sweep needs at least one segment size and one "
                         "cache capacity")
    executor = _configure_engine(args)
    sink = _progress_sink(args)
    executor.progress = sink
    scale = SCALES[args.scale]()
    suite = multicore_suite(scale)
    start = time.perf_counter()

    jobs = {("Base", workload.name): SimJob.multicore("Base", workload, scale)
            for workload in suite}
    points = [(blocks, rows) for blocks in args.segment_blocks
              for rows in args.cache_rows]
    for blocks, rows in points:
        for workload in suite:
            jobs[((blocks, rows), workload.name)] = SimJob.multicore(
                "FIGCache-Fast", workload, scale, segment_blocks=blocks,
                cache_rows_per_bank=rows)
    try:
        results = executor.run(jobs.values())
    finally:
        if sink is not None:
            sink.close()
            executor.progress = None

    table_rows = []
    for blocks, rows in points:
        # Under --keep-going a skipped job leaves a hole in ``results``;
        # the sweep point it belonged to reports "n/a" instead of a
        # number computed from a partial suite.
        speedups = []
        for workload in suite:
            base = results.get(jobs[("Base", workload.name)])
            other = results.get(jobs[((blocks, rows), workload.name)])
            if base is None or other is None:
                speedups = None
                break
            speedups.append(other.ipc_sum / base.ipc_sum)
        size = blocks * 64
        label = f"{size}B" if size < 1024 else f"{size // 1024}kB"
        table_rows.append([label, rows,
                           geometric_mean(speedups)
                           if speedups else None])
    data = {
        "figure": "Design-space sweep",
        "metric": "FIGCache-Fast weighted speedup over Base "
                  "(geomean over the multiprogrammed suite)",
        "columns": ["segment_size", "cache_rows_per_bank", "speedup"],
        "rows": table_rows,
    }
    _report(data, executor, time.perf_counter() - start)
    if args.metrics_out:
        from repro.sim.metrics_export import metrics_snapshot, write_metrics

        path = write_metrics(args.metrics_out,
                             metrics_snapshot(executor=executor))
        print(f"metrics written to {path}")
    return _finish_batch(executor)


#: Sentinel for an omitted ``--profile`` flag: ``--profile`` without an
#: argument means "profile the default job", which argparse stores as
#: ``None`` — so absence needs its own marker.
_NO_PROFILE = object()


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.experiments import bench

    if args.profile is not _NO_PROFILE:
        # Profile-only mode: no JSON report — the table goes to stdout so
        # perf PRs can paste it straight into their discussion.
        print(bench.profile_job(args.profile, backend=args.backend,
                                top=args.profile_top))
        return 0
    if args.sweep:
        report = bench.run_sweep_bench(quick=args.quick,
                                       jobs_levels=args.sweep_jobs,
                                       repeats=args.repeats)
        stem = args.output_name or f"BENCH_sweep_{report['rev']}"
        path = bench.write_report(report, Path(args.output_dir), stem=stem)
        print(bench.format_sweep_report(report))
        print(f"report written to {path}")
        return 0
    if args.ab:
        report = bench.run_paired_bench(quick=args.quick,
                                        repeats=args.repeats,
                                        backend=args.backend or "turbo")
        stem = args.output_name or f"BENCH_ab_{report['rev']}"
        path = bench.write_report(report, Path(args.output_dir), stem=stem)
        print(bench.format_paired_report(report))
        print(f"report written to {path}")
        return 0
    report = bench.run_bench(quick=args.quick, repeats=args.repeats,
                             backend=args.backend)
    output_dir = Path(args.output_dir)
    path = bench.write_report(report, output_dir,
                              stem=args.output_name)

    comparison = None
    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        with baseline_path.open(encoding="utf-8") as handle:
            comparison = bench.compare_to_baseline(report, json.load(handle))
    print(bench.format_report(report, comparison))
    print(f"report written to {path}")
    return 0


def _cmd_timeline(args) -> int:
    from repro.experiments.engine import SimJob
    from repro.workloads.catalog import get_benchmark

    try:
        get_benchmark(args.workload)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    executor = _configure_engine(args)
    scale = SCALES[args.scale]()
    job = SimJob.single_core(args.configuration, args.workload, scale,
                             telemetry=True,
                             telemetry_epoch_cycles=args.epoch)
    start = time.perf_counter()
    result = executor.run_one(job)
    elapsed_s = time.perf_counter() - start
    telemetry = result.telemetry
    rows = [[row["end_cycle"], row["ipc"], row["row_buffer_hit_rate"],
             row["cache_hit_rate"], row["reads"], row["writes"],
             row.get("read_gbps", 0.0), row["queue_depth_max"]]
            for row in telemetry.epochs.rows(telemetry.cpu_clock_ghz)]
    print(format_table(
        f"timeline: {args.workload} on {args.configuration} "
        f"(epoch = {telemetry.epoch_cycles} cycles)",
        ["end_cycle", "ipc", "rb_hit", "cache_hit", "reads", "writes",
         "read_GB/s", "queue_max"], rows))
    summary = telemetry.read_percentiles()
    print(f"\nread latency (cycles): p50 {summary['p50']}  "
          f"p95 {summary['p95']}  p99 {summary['p99']}  "
          f"max {summary['max']}  mean {summary['mean']:.1f}  "
          f"({summary['count']} reads, "
          f"{telemetry.write_latency.count} writes)")
    print(f"{executor.simulations_executed} simulations executed, "
          f"{executor.cache_hits} cache hits, {elapsed_s:.1f}s")
    return 0


def _cmd_trace(args) -> int:
    import dataclasses

    from repro.experiments.engine import SimJob
    from repro.sim.backend import resolve_backend
    from repro.sim.system import System
    from repro.sim.tracing import EventTracer, write_chrome_trace
    from repro.workloads.catalog import get_benchmark

    try:
        get_benchmark(args.workload)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    scale = SCALES[args.scale]()
    job = SimJob.single_core(args.configuration, args.workload, scale)
    config = job.build_config()
    if args.backend:
        config = dataclasses.replace(config, backend=args.backend)
    backend_name = resolve_backend(config.backend).name
    traces = job.build_traces()
    tracer = EventTracer() if args.max_events is None \
        else EventTracer(max_events=args.max_events)
    system = System(config, traces, tracer=tracer)
    start = time.perf_counter()
    result = system.run(args.workload)
    elapsed_s = time.perf_counter() - start
    path = write_chrome_trace(
        args.out, tracer, config.dram,
        metadata={"workload": args.workload,
                  "configuration": args.configuration,
                  "scale": args.scale, "backend": backend_name})
    kinds: dict[str, int] = {}
    for record in tracer.events:
        kinds[record[0]] = kinds.get(record[0], 0) + 1
    breakdown = ", ".join(f"{kinds.get(kind, 0)} {label}"
                          for kind, label in (("cmd", "commands"),
                                              ("req", "requests"),
                                              ("ref", "refreshes"),
                                              ("mech", "mechanism")))
    print(f"traced {args.workload} on {args.configuration} "
          f"({backend_name} backend): {result.total_cycles} cycles, "
          f"{elapsed_s:.1f}s")
    print(f"{tracer.total_events} events recorded "
          f"({breakdown}; {tracer.dropped_events} dropped by the "
          f"{tracer.max_events}-event ring buffer)")
    print(f"trace written to {path} — open at https://ui.perfetto.dev")
    return 0


def _cmd_metrics(args) -> int:
    from pathlib import Path

    from repro.sim.metrics_export import metrics_snapshot, to_prometheus_text

    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = str(default_cache_dir())
    cache = engine.ResultCache(None if cache_dir == "none" else cache_dir)
    snapshot = metrics_snapshot(cache=cache)
    if args.format == "prometheus":
        text = to_prometheus_text(snapshot)
    else:
        text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"metrics written to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_cache(args) -> int:
    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = str(default_cache_dir())
    cache = engine.ResultCache(None if cache_dir == "none" else cache_dir)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {cache.directory}")
    elif args.cache_command == "verify":
        report = cache.verify(repair=args.repair)
        print(f"cache directory : {cache.directory}")
        print(f"entries checked : {report['checked']}")
        print(f"ok              : {report['ok']}")
        print(f"legacy (no sum) : {report['legacy']}")
        print(f"stale salt      : {report['stale_salt']}")
        print(f"corrupt         : {len(report['corrupt'])}")
        for key in report["corrupt"]:
            print(f"  corrupt: {key}")
        if args.repair:
            print(f"quarantined     : {report['quarantined']}")
        elif report["corrupt"]:
            print("re-run with --repair to move corrupt entries to "
                  "quarantine/")
        return 1 if report["corrupt"] else 0
    else:
        # Same numbers the ``metrics`` endpoint exports: both route
        # through the metrics snapshot, so human and scraped views agree.
        from repro.sim.metrics_export import metrics_snapshot

        section = metrics_snapshot(cache=cache)["cache"]
        print(f"cache directory : {cache.directory}")
        print(f"disk entries    : {section['disk_entries']}")
        print(f"disk bytes      : {section['disk_bytes']}")
        print(f"shards          : {section['shards']}")
        print(f"gzip entries    : {section['disk_compressed']}")
        print(f"legacy entries  : {section['disk_legacy']}")
        print(f"decode failures : {section['decode_failures']}")
        print(f"quarantined     : {section['quarantine_entries']}")
        print(f"salt            : {engine.cache_salt()}")
    return 0


def _cmd_standards(args) -> int:
    if args.standards_command == "list":
        print(_profile_table())
        return 0
    # ``smoke``: one tiny simulation per profile — a fast cross-standard
    # validation that every catalog entry builds and simulates.
    from repro.sim.config import make_system_config
    from repro.sim.system import run_workload
    from repro.workloads.catalog import get_benchmark

    scale = SCALES[args.scale]()
    trace = [get_benchmark("lbm").make_trace(scale.single_core_records)]
    rows = []
    for profile in list_profiles():
        start = time.perf_counter()
        result = run_workload(make_system_config("Base",
                                                 standard=profile.name),
                              trace, "lbm")
        rows.append([profile.name, profile.refresh_mode,
                     result.total_cycles, result.cores[0].ipc,
                     result.dram_counters.refreshes,
                     time.perf_counter() - start])
    print(format_table(
        "standards smoke: Base on one tiny lbm trace per profile",
        ["standard", "refresh", "cycles", "ipc", "refreshes", "wall_s"],
        rows))
    return 0


def _profile_table() -> str:
    rows = [profile.summary_row() for profile in list_profiles()]
    return format_table(
        "DRAM device catalog (make_system_config(standard=...))",
        ["standard", "family", "MT/s", "banks (groups x banks)",
         "row bytes", "refresh", "description"], rows)


def _cmd_list(args) -> int:
    del args
    print("figures (run-figure N):")
    for number, runner in sorted(FIGURES.items()):
        print(f"  {number:>2d}  {runner.__doc__.splitlines()[0]}")
    print("named studies (run-figure NAME):")
    for name, runner in NAMED_FIGURES.items():
        print(f"  {name:<12s}  {runner.__doc__.splitlines()[0]}")
    print("static experiments (run-static NAME):")
    for name, runner in STATIC_EXPERIMENTS.items():
        print(f"  {name:<12s}  {runner.__doc__.splitlines()[0]}")
    print("device profiles (standard=... / standards list):")
    for profile in list_profiles():
        print(f"  {profile.name:<12s}  {profile.family}, "
              f"{profile.data_rate_mts} MT/s, "
              f"{profile.bankgroups_per_rank}x"
              f"{profile.banks_per_bankgroup} banks, "
              f"{profile.row_size_bytes} B rows, "
              f"{profile.refresh_mode} refresh — {profile.description}")
    return 0


def _int_list(text: str) -> list[int]:
    return [int(item) for item in text.split(",") if item]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the FIGARO/FIGCache reproduction experiments "
                    "through the parallel, cached experiment engine.")
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("run-figure",
                            help="regenerate one of the paper's figures "
                                 "or a named study (e.g. dram-types)")
    figure.add_argument("figure", choices=FIGURE_CHOICES)
    _add_engine_arguments(figure)
    _add_progress_arguments(figure)
    figure.set_defaults(func=_cmd_run_figure)

    static = sub.add_parser("run-static",
                            help="regenerate a table/section study")
    static.add_argument("name", choices=list(STATIC_EXPERIMENTS))
    _add_engine_arguments(static)
    static.set_defaults(func=_cmd_run_static)

    sweep = sub.add_parser("sweep",
                           help="design-space sweep: segment size x "
                                "in-DRAM cache capacity")
    sweep.add_argument("--segment-blocks", type=_int_list,
                       default=[8, 16, 32], metavar="B1,B2,...",
                       help="segment sizes in 64 B blocks (default 8,16,32)")
    sweep.add_argument("--cache-rows", type=_int_list,
                       default=[32, 64, 128], metavar="R1,R2,...",
                       help="cache rows per bank (default 32,64,128)")
    sweep.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write a unified metrics snapshot after the "
                            "sweep (.prom: Prometheus text, else JSON)")
    _add_engine_arguments(sweep)
    _add_progress_arguments(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    bench = sub.add_parser("bench",
                           help="time the simulator on the figure-7 "
                                "workload set; emit BENCH_<rev>.json")
    bench.add_argument("--quick", action="store_true",
                       help="small CI-friendly subset (tiny scale, "
                            "Base + FIGCache-Fast only)")
    bench.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="repeat each job N times, keep the fastest "
                            "(default 3; damps machine-load noise)")
    bench.add_argument("--output-dir", default="benchmarks/perf",
                       metavar="DIR",
                       help="where BENCH_<rev>.json is written "
                            "(default benchmarks/perf)")
    bench.add_argument("--baseline", default="benchmarks/perf/BENCH_baseline.json",
                       metavar="FILE",
                       help="baseline report to compute speedups against "
                            "(default benchmarks/perf/BENCH_baseline.json)")
    bench.add_argument("--backend", default=None, metavar="NAME",
                       help="simulation backend to time (python, turbo); "
                            "default: REPRO_SIM_BACKEND or python.  The "
                            "resolved name is recorded in the report")
    bench.add_argument("--profile", nargs="?", const=None,
                       default=_NO_PROFILE, metavar="JOB",
                       help="cProfile one bench job (default: the first "
                            "job of the matrix) and print the top "
                            "functions instead of running the timed "
                            "matrix")
    bench.add_argument("--profile-top", type=int, default=25, metavar="N",
                       help="rows of the --profile table (default 25)")
    bench.add_argument("--ab", action="store_true",
                       help="paired A/B mode: time every job on both the "
                            "python baseline and the --backend candidate "
                            "(default turbo) in the same process and "
                            "record per-job + geomean speedups in the "
                            "report's comparisons block")
    bench.add_argument("--sweep", action="store_true",
                       help="benchmark the experiment engine's sweep "
                            "throughput (jobs/sec, cold cache) instead of "
                            "the simulator: warm-pool engine vs the PR-1 "
                            "dispatch strategy at each --sweep-jobs level")
    bench.add_argument("--sweep-jobs", type=_int_list, default=[1, 2, 4],
                       metavar="N1,N2,...",
                       help="worker counts the sweep bench measures "
                            "(default 1,2,4)")
    bench.add_argument("--output-name", default=None, metavar="STEM",
                       help="report filename stem (default: "
                            "BENCH_sweep_<rev> for --sweep, BENCH_<rev> "
                            "otherwise)")
    bench.set_defaults(func=_cmd_bench)

    timeline = sub.add_parser("timeline",
                              help="per-epoch telemetry time series for "
                                   "one single-core workload")
    timeline.add_argument("workload",
                          help="benchmark name (see 'list')")
    timeline.add_argument("--configuration", default="FIGCache-Fast",
                          metavar="NAME",
                          help="configuration to simulate "
                               "(default: FIGCache-Fast; any registered "
                               f"name: {', '.join(configuration_names())})")
    timeline.add_argument("--epoch", type=int,
                          default=DEFAULT_EPOCH_CYCLES, metavar="CYCLES",
                          help="epoch length in CPU cycles "
                               f"(default {DEFAULT_EPOCH_CYCLES})")
    _add_engine_arguments(timeline)
    timeline.set_defaults(func=_cmd_timeline)

    standards = sub.add_parser("standards",
                               help="DRAM device catalog tools")
    standards.add_argument("standards_command", choices=("list", "smoke"))
    standards.add_argument("--scale", choices=sorted(SCALES),
                           default="tiny",
                           help="trace length for the smoke run "
                                "(default: tiny)")
    standards.set_defaults(func=_cmd_standards)

    trace = sub.add_parser("trace",
                           help="record an event-level simulation trace "
                                "as Chrome trace-event JSON (Perfetto)")
    trace.add_argument("workload", help="benchmark name (see 'list')")
    trace.add_argument("--configuration", "--config", dest="configuration",
                       default="FIGCache-Fast", metavar="NAME",
                       help="configuration to simulate "
                            "(default: FIGCache-Fast; any registered "
                            f"name: {', '.join(configuration_names())})")
    trace.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                       help="trace length (default: smoke)")
    trace.add_argument("--backend", default=None, metavar="NAME",
                       help="simulation backend (python, turbo); default: "
                            "REPRO_SIM_BACKEND or python")
    trace.add_argument("--max-events", type=int, default=None,
                       metavar="N",
                       help="ring-buffer capacity; older events are "
                            "dropped past this (default 1000000)")
    trace.add_argument("--out", default="trace.json", metavar="FILE",
                       help="output path (default trace.json)")
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser("metrics",
                             help="unified health-metrics snapshot "
                                  "(JSON or Prometheus text)")
    metrics.add_argument("--format", choices=("json", "prometheus"),
                         default="json",
                         help="output format (default: json)")
    metrics.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result cache to report on (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    metrics.add_argument("--out", default=None, metavar="FILE",
                         help="write to FILE instead of stdout")
    metrics.set_defaults(func=_cmd_metrics)

    cache = sub.add_parser("cache", help="persistent result cache tools")
    cache.add_argument("cache_command", choices=("stats", "clear", "verify"))
    cache.add_argument("--cache-dir", default=None, metavar="DIR")
    cache.add_argument("--repair", action="store_true",
                       help="with 'verify': move corrupt entries into "
                            "<cache>/quarantine/ instead of just "
                            "reporting them")
    cache.set_defaults(func=_cmd_cache)

    listing = sub.add_parser("list", help="list runnable experiments")
    listing.set_defaults(func=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except engine.JobExecutionError as error:
        # The full per-job tracebacks live in the exception (and in a
        # --progress-file when one was given); the console gets one
        # actionable line, not a wall of worker traceback.
        report = error.report
        if report is not None and report.failures:
            summary = report.summary()
            first = report.failures[0]
            print(f"error: batch failed ({summary}); first failure: "
                  f"{first.one_line()}", file=sys.stderr)
        else:
            first_line = str(error).splitlines()[0] if str(error) else ""
            print(f"error: batch failed: {first_line}", file=sys.stderr)
        print("hint: --keep-going retries and then skips poisoned jobs; "
              "--progress-file FILE captures per-job events",
              file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
