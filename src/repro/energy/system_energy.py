"""System-level energy model and breakdown (Figure 11).

Models the non-DRAM components the paper accounts for — CPU cores, L1/L2
caches, the last-level cache, and the off-chip interconnect — with simple
activity-plus-static models, and combines them with the DRAM energy model
into the normalised breakdown reported in the paper's Figure 11.

Two effects drive the paper's energy results and are both captured here:

* shorter execution time reduces every component's static energy, and
* a higher row-buffer hit rate (plus fast-subarray hits) reduces DRAM
  activation energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.counters import CommandCounters
from repro.energy.dram_power import DRAMEnergyModel, DRAMEnergyParams


@dataclass(frozen=True)
class SystemEnergyParams:
    """Per-component energy parameters (representative 22 nm values)."""

    #: Static power per core, in milliwatts.
    core_static_mw: float = 900.0
    #: Dynamic energy per executed instruction, in nanojoules.
    core_dynamic_nj_per_instruction: float = 0.25
    #: Dynamic energy per L1/L2 access, in nanojoules.
    l1l2_nj_per_access: float = 0.08
    #: Static power of L1+L2 per core, in milliwatts.
    l1l2_static_mw: float = 40.0
    #: Dynamic energy per LLC access, in nanojoules.
    llc_nj_per_access: float = 0.6
    #: Static power of the LLC (whole chip), in milliwatts.
    llc_static_mw: float = 350.0
    #: Energy per 64 B transferred over the off-chip interconnect, nJ.
    offchip_nj_per_block: float = 4.0
    #: Static power of the off-chip interface per channel, in milliwatts.
    offchip_static_mw: float = 60.0
    #: FIGCache tag store power (paper Section 8.3: 0.187 mW), milliwatts.
    fts_mw: float = 0.187
    #: DRAM energy parameters.
    dram: DRAMEnergyParams = DRAMEnergyParams()


@dataclass(frozen=True)
class SystemActivity:
    """Activity counts a simulation produces for the energy model."""

    #: Execution time in nanoseconds.
    elapsed_ns: float
    #: Number of cores.
    num_cores: int
    #: Number of memory channels.
    num_channels: int
    #: Total instructions executed.
    instructions: int
    #: L1 + L2 accesses.
    l1l2_accesses: int
    #: LLC accesses.
    llc_accesses: int
    #: Blocks transferred over the off-chip bus (reads + writes).
    offchip_blocks: int
    #: DRAM command counts.
    dram_counters: CommandCounters
    #: Whether an in-DRAM cache tag store is present (FIGCache/LISA-VILLA).
    has_tag_store: bool = False


@dataclass(frozen=True)
class SystemEnergyBreakdown:
    """System energy split by component, in nanojoules."""

    cpu_nj: float
    l1l2_nj: float
    llc_nj: float
    offchip_nj: float
    dram_nj: float

    @property
    def total_nj(self) -> float:
        """Total system energy."""
        return (self.cpu_nj + self.l1l2_nj + self.llc_nj + self.offchip_nj
                + self.dram_nj)

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the persistent result cache)."""
        return {
            "cpu_nj": self.cpu_nj,
            "l1l2_nj": self.l1l2_nj,
            "llc_nj": self.llc_nj,
            "offchip_nj": self.offchip_nj,
            "dram_nj": self.dram_nj,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SystemEnergyBreakdown":
        """Rebuild a breakdown from :meth:`to_dict` output."""
        return cls(cpu_nj=data["cpu_nj"], l1l2_nj=data["l1l2_nj"],
                   llc_nj=data["llc_nj"], offchip_nj=data["offchip_nj"],
                   dram_nj=data["dram_nj"])

    def normalized_to(self, baseline: "SystemEnergyBreakdown") -> dict:
        """Per-component energy normalised to a baseline's total."""
        total = baseline.total_nj
        if total <= 0:
            raise ValueError("baseline energy must be positive")
        return {
            "CPU": self.cpu_nj / total,
            "L1&L2": self.l1l2_nj / total,
            "LLC": self.llc_nj / total,
            "Off-Chip": self.offchip_nj / total,
            "DRAM": self.dram_nj / total,
            "Total": self.total_nj / total,
        }


class SystemEnergyModel:
    """Computes the Figure 11 style system energy breakdown."""

    def __init__(self, params: SystemEnergyParams | None = None):
        self._params = params or SystemEnergyParams()
        self._dram_model = DRAMEnergyModel(self._params.dram)

    @property
    def params(self) -> SystemEnergyParams:
        """The energy parameters in use."""
        return self._params

    @property
    def dram_model(self) -> DRAMEnergyModel:
        """The DRAM energy sub-model."""
        return self._dram_model

    def energy(self, activity: SystemActivity) -> SystemEnergyBreakdown:
        """Compute the per-component energy for one simulation."""
        params = self._params
        elapsed_ns = activity.elapsed_ns
        cpu = (params.core_static_mw * 1e-3 * elapsed_ns * activity.num_cores
               + params.core_dynamic_nj_per_instruction
               * activity.instructions)
        l1l2 = (params.l1l2_static_mw * 1e-3 * elapsed_ns * activity.num_cores
                + params.l1l2_nj_per_access * activity.l1l2_accesses)
        llc = (params.llc_static_mw * 1e-3 * elapsed_ns
               + params.llc_nj_per_access * activity.llc_accesses)
        if activity.has_tag_store:
            llc += params.fts_mw * 1e-3 * elapsed_ns
        offchip = (params.offchip_static_mw * 1e-3 * elapsed_ns
                   * activity.num_channels
                   + params.offchip_nj_per_block * activity.offchip_blocks)
        dram = self._dram_model.energy(activity.dram_counters, elapsed_ns,
                                       activity.num_channels).total_nj
        return SystemEnergyBreakdown(cpu_nj=cpu, l1l2_nj=l1l2, llc_nj=llc,
                                     offchip_nj=offchip, dram_nj=dram)
