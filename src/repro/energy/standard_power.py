"""Per-standard DRAM power tables.

One :class:`~repro.energy.dram_power.DRAMEnergyParams` instance per
supported device standard, consumed by the device catalog
(:mod:`repro.dram.standards`).  As with the base DDR4 numbers, these are
representative figures in the spirit of DRAMPower / vendor power
calculators rather than calibrated datasheet values: the experiments only
use relative energies, and the cross-standard study compares each
mechanism against Base *on the same standard*, so only the intra-standard
ratios matter.

Rough rationale per family:

* **DDR4 speed grades** share the 1.2 V core array; faster I/O raises the
  per-access termination energy slightly and the background power a bit.
* **LPDDR4** runs a 1.1 V core with much weaker I/O drivers (unterminated,
  point-to-point), so column access and background energy drop sharply;
  per-bank refresh moves far less charge per event than an all-bank REF.
* **HBM2** moves data over very short in-package interconnect (lowest
  energy per bit) but keeps DDR4-like array energy; its 2 kB rows cost
  less per ACTIVATE than 8 kB DDR4 rows.
* **DDR5** halves the bank charge per ACTIVATE versus DDR4 (smaller rows,
  more banks) but pays more background power for the on-DIMM management
  and higher-speed I/O.
"""

from __future__ import annotations

from repro.energy.dram_power import DRAMEnergyParams

#: Energy parameters per standard family and speed grade, keyed by the
#: profile names of :data:`repro.dram.standards.PROFILES`.
STANDARD_ENERGY: dict[str, DRAMEnergyParams] = {
    "DDR4-1600": DRAMEnergyParams(),
    "DDR4-2400": DRAMEnergyParams(read_nj=10.8, write_nj=11.8,
                                  background_mw=190.0),
    "DDR4-3200": DRAMEnergyParams(read_nj=11.0, write_nj=12.0,
                                  background_mw=200.0),
    "LPDDR4-3200": DRAMEnergyParams(act_pre_nj=8.0, read_nj=4.0,
                                    write_nj=4.5, reloc_nj=0.6,
                                    refresh_nj=20.0, background_mw=60.0),
    "HBM2": DRAMEnergyParams(act_pre_nj=9.0, read_nj=3.0, write_nj=3.3,
                             reloc_nj=0.5, refresh_nj=18.0,
                             background_mw=120.0),
    "DDR5-4800": DRAMEnergyParams(act_pre_nj=11.0, read_nj=9.0,
                                  write_nj=10.0, reloc_nj=0.9,
                                  refresh_nj=110.0, background_mw=220.0),
}


def energy_params_for(standard: str) -> DRAMEnergyParams:
    """Power table for ``standard``; defaults to the DDR4 base numbers."""
    return STANDARD_ENERGY.get(standard, DRAMEnergyParams())
