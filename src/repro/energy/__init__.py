"""Energy models.

The paper evaluates system energy with DRAMPower (DRAM), McPAT (cores),
CACTI (caches), and Orion (interconnect).  This package provides equivalent
command-counting and activity-based models:

* :mod:`repro.energy.dram_power` — per-command DRAM energy (ACT/PRE, RD, WR,
  RELOC, refresh) plus background power, with separate parameters for fast
  (short-bitline) regions.
* :mod:`repro.energy.system_energy` — CPU core, cache, and off-chip
  interconnect energy, and the system-level breakdown used by Figure 11.
* :mod:`repro.energy.standard_power` — per-standard DRAM power tables for
  the device catalog (:mod:`repro.dram.standards`).
"""

from repro.energy.dram_power import DRAMEnergyModel, DRAMEnergyParams
from repro.energy.standard_power import STANDARD_ENERGY, energy_params_for
from repro.energy.system_energy import (SystemEnergyBreakdown,
                                         SystemEnergyModel,
                                         SystemEnergyParams)

__all__ = [
    "DRAMEnergyModel",
    "DRAMEnergyParams",
    "STANDARD_ENERGY",
    "SystemEnergyBreakdown",
    "SystemEnergyModel",
    "SystemEnergyParams",
    "energy_params_for",
]
