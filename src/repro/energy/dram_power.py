"""DRAM energy model.

A command-counting model in the spirit of DRAMPower / the Micron power
calculator: every ACTIVATE+PRECHARGE pair, READ, WRITE, RELOC, and REFRESH
has a fixed energy cost, and background power accrues with elapsed time.
Accesses to fast (short-bitline) regions use scaled row energies, because a
fast subarray moves charge over much shorter bitlines.

The absolute values are representative DDR4 numbers (per rank of x8 chips);
the experiments only use relative energies, so the exact calibration does
not affect the reproduced trends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.counters import CommandCounters


@dataclass(frozen=True)
class DRAMEnergyParams:
    """Per-command energies (nanojoules) and background power (milliwatts)."""

    #: Energy of one ACTIVATE + PRECHARGE pair on a regular (slow) row.
    act_pre_nj: float = 20.0
    #: Additional scaling for ACT/PRE on fast (short-bitline) rows.
    fast_act_pre_scale: float = 0.45
    #: Energy of one column READ (64 B across the rank, incl. I/O).
    read_nj: float = 10.5
    #: Energy of one column WRITE.
    write_nj: float = 11.5
    #: Energy of one FIGARO RELOC (internal column transfer, no I/O).  The
    #: paper estimates 0.03 uJ for a full one-block relocation sequence; the
    #: RELOC command itself moves data only over the global bitlines.
    reloc_nj: float = 1.2
    #: Energy of one all-bank refresh.
    refresh_nj: float = 160.0
    #: Background (standby + peripheral) power per channel, in milliwatts.
    background_mw: float = 180.0

    def validate(self) -> None:
        """Raise ``ValueError`` on non-physical parameters."""
        for name in ("act_pre_nj", "read_nj", "write_nj", "reloc_nj",
                     "refresh_nj", "background_mw"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0 < self.fast_act_pre_scale <= 1.0:
            raise ValueError("fast_act_pre_scale must be in (0, 1]")


@dataclass(frozen=True)
class DRAMEnergyBreakdown:
    """DRAM energy split by source, in nanojoules."""

    activation_nj: float
    read_nj: float
    write_nj: float
    reloc_nj: float
    refresh_nj: float
    background_nj: float

    @property
    def total_nj(self) -> float:
        """Total DRAM energy."""
        return (self.activation_nj + self.read_nj + self.write_nj
                + self.reloc_nj + self.refresh_nj + self.background_nj)


class DRAMEnergyModel:
    """Computes DRAM energy from command counters and elapsed time."""

    def __init__(self, params: DRAMEnergyParams | None = None):
        self._params = params or DRAMEnergyParams()
        self._params.validate()

    @property
    def params(self) -> DRAMEnergyParams:
        """The energy parameters in use."""
        return self._params

    def energy(self, counters: CommandCounters, elapsed_ns: float,
               num_channels: int = 1) -> DRAMEnergyBreakdown:
        """Energy for the given command counts over ``elapsed_ns``."""
        if elapsed_ns < 0:
            raise ValueError("elapsed_ns must be non-negative")
        params = self._params
        slow_activates = counters.activates - counters.fast_activates
        activation = (slow_activates * params.act_pre_nj
                      + counters.fast_activates * params.act_pre_nj
                      * params.fast_act_pre_scale)
        read = counters.reads * params.read_nj
        write = counters.writes * params.write_nj
        reloc = counters.relocs * params.reloc_nj
        refresh = counters.refreshes * params.refresh_nj
        background = params.background_mw * 1e-3 * elapsed_ns * num_channels
        return DRAMEnergyBreakdown(activation_nj=activation, read_nj=read,
                                   write_nj=write, reloc_nj=reloc,
                                   refresh_nj=refresh,
                                   background_nj=background)

    def relocation_energy_uj(self, num_blocks: int,
                             include_act_pre: bool = True) -> float:
        """Energy of relocating one segment of ``num_blocks`` blocks, in uJ.

        With the default parameters and one block this is in the same
        ballpark as the paper's 0.03 uJ estimate for a rank-level FIGARO
        relocation (two activations, one RELOC, one precharge).
        """
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        params = self._params
        energy_nj = num_blocks * params.reloc_nj
        if include_act_pre:
            energy_nj += 2 * params.act_pre_nj * 0.725
        return energy_nj / 1000.0
