"""Design-space exploration of FIGCache parameters.

Sweeps the row segment size and the replacement policy on a memory-intensive
workload (the knobs studied in the paper's Figures 13 and 14) and prints the
speedup over Base for each point, so a user can pick a configuration for
their own workload mix.

Run with:  python examples/design_space.py
"""

from repro.sim import make_system_config, run_workload
from repro.workloads import get_benchmark


def run(configuration: str, trace, **overrides) -> float:
    config = make_system_config(configuration, channels=1, **overrides)
    return run_workload(config, [trace], "design-space").cores[0].ipc


def main() -> None:
    trace = get_benchmark("com").make_trace(8000)
    base_ipc = run("Base", trace)
    print(f"Base IPC: {base_ipc:.3f}")

    print("\nRow segment size sweep (FIGCache-Fast, paper Figure 13):")
    for blocks in (8, 16, 32, 64, 128):
        ipc = run("FIGCache-Fast", trace, segment_blocks=blocks)
        size = blocks * 64
        label = f"{size}B" if size < 1024 else f"{size // 1024}kB"
        print(f"  segment {label:>5s}: speedup {ipc / base_ipc:.3f}")

    print("\nReplacement policy sweep (FIGCache-Fast, paper Figure 14):")
    for policy in ("Random", "LRU", "SegmentBenefit", "RowBenefit"):
        ipc = run("FIGCache-Fast", trace, replacement_policy=policy)
        print(f"  {policy:>14s}: speedup {ipc / base_ipc:.3f}")


if __name__ == "__main__":
    main()
