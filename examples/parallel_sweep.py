"""A small design-space sweep through the parallel experiment engine.

Crosses the FIGCache row segment size with the in-DRAM cache capacity (the
knobs of the paper's Figures 13 and 12) over the multiprogrammed workload
suite, building one declarative SimJob per point and submitting the whole
batch at once: the executor deduplicates the shared Base runs, answers
anything already in the persistent cache, and fans the rest across worker
processes.  Re-running the script is nearly instant — every point is
served from the cache.

Run with:  python examples/parallel_sweep.py [workers]
(default: 4 workers; results persist under .repro-sweep-cache/)
"""

import sys
import time

from repro.experiments.engine import (ExperimentScale, JobExecutor,
                                      ResultCache, SimJob)
from repro.experiments.runner import (format_table, geometric_mean,
                                      multicore_suite)

SEGMENT_BLOCKS = (8, 16, 32, 64)
CACHE_ROWS = (32, 64, 128)


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    scale = ExperimentScale(multicore_records=1000, num_cores=4,
                            multicore_channels=2, mixes_per_category=1)
    suite = multicore_suite(scale)

    # Declare every job of the sweep up front: the shared Base runs plus
    # one FIGCache-Fast point per (segment size, cache capacity) pair.
    jobs = {("Base", w.name): SimJob.multicore("Base", w, scale)
            for w in suite}
    for blocks in SEGMENT_BLOCKS:
        for rows in CACHE_ROWS:
            for w in suite:
                jobs[((blocks, rows), w.name)] = SimJob.multicore(
                    "FIGCache-Fast", w, scale,
                    segment_blocks=blocks, cache_rows_per_bank=rows)

    # The context manager shuts the warm worker pool down on exit; the
    # pool is shared by every run() call made inside the block.
    with JobExecutor(cache=ResultCache(".repro-sweep-cache"),
                     jobs=workers) as executor:
        start = time.perf_counter()
        results = executor.run(jobs.values())
        elapsed = time.perf_counter() - start

    table = []
    for blocks in SEGMENT_BLOCKS:
        size = blocks * 64
        label = f"{size}B" if size < 1024 else f"{size // 1024}kB"
        for rows in CACHE_ROWS:
            speedups = [results[jobs[((blocks, rows), w.name)]].ipc_sum
                        / results[jobs[("Base", w.name)]].ipc_sum
                        for w in suite]
            table.append([label, rows, geometric_mean(speedups)])
    print(format_table(
        "Segment size x cache capacity sweep "
        "(FIGCache-Fast weighted speedup over Base)",
        ["segment_size", "cache_rows_per_bank", "speedup"], table))
    print(f"\n{executor.simulations_executed} simulations executed, "
          f"{executor.cache_hits} cache hits, {workers} worker(s), "
          f"{elapsed:.1f}s")


if __name__ == "__main__":
    main()
