"""RowHammer-style activation-concentration study (paper Section 6).

FIGCache keeps frequently-accessed row segments in a handful of cache rows,
so the regular DRAM rows that hold the original data are opened far less
often.  This example measures activations to regular rows with and without
FIGCache on a hot-segment workload, the quantity a row-disturbance attack
(RowHammer) depends on.

Run with:  python examples/rowhammer_mitigation.py
"""

from repro.sim import make_system_config, run_workload
from repro.workloads import get_benchmark


def main() -> None:
    trace = get_benchmark("mcf").make_trace(8000)
    rows = []
    for name in ("Base", "FIGCache-Fast"):
        config = make_system_config(name, channels=1,
                                    track_row_activations=True)
        result = run_workload(config, [trace], "rowhammer-study")
        counts = result.dram_counters.row_activation_counts
        regular_limit = config.dram.regular_rows_per_bank
        regular = {key: value for key, value in counts.items()
                   if key[1] < regular_limit}
        rows.append((name, sum(regular.values()), len(regular),
                     max(regular.values()) if regular else 0))

    print(f"{'configuration':16s} {'regular-row ACTs':>17s} "
          f"{'distinct rows':>14s} {'max per row':>12s}")
    for name, total, distinct, worst in rows:
        print(f"{name:16s} {total:17d} {distinct:14d} {worst:12d}")
    base_total = rows[0][1]
    fig_total = rows[1][1]
    print(f"\nFIGCache-Fast reduces regular-row activations by "
          f"{1 - fig_total / base_total:.1%} on this workload.")


if __name__ == "__main__":
    main()
