"""Eight-core multiprogrammed workload across all evaluated configurations.

Builds one of the paper's 100 %-memory-intensive eight-core mixes (Section 7)
and reports weighted-speedup-style throughput, in-DRAM cache hit rate, and
row-buffer hit rate for every configuration of the paper's Section 8.

Run with:  python examples/multicore_mix.py
"""

from repro.sim import CONFIGURATION_NAMES, make_system_config, run_workload
from repro.workloads import make_multiprogrammed_workload


def main() -> None:
    workload = make_multiprogrammed_workload(intensive_fraction=1.0, index=0)
    traces = workload.make_traces(2500)
    print(f"workload {workload.name}: "
          f"{', '.join(spec.name for spec in workload.benchmarks)}")

    base_throughput = None
    header = (f"{'configuration':16s} {'IPC sum':>8s} {'speedup':>8s} "
              f"{'cache hit':>10s} {'row hit':>8s}")
    print(header)
    print("-" * len(header))
    for name in CONFIGURATION_NAMES:
        config = make_system_config(name, channels=4)
        result = run_workload(config, traces, workload.name)
        throughput = result.ipc_sum
        if base_throughput is None:
            base_throughput = throughput
        print(f"{name:16s} {throughput:8.3f} "
              f"{throughput / base_throughput:8.3f} "
              f"{result.in_dram_cache_hit_rate:10.2%} "
              f"{result.row_buffer_hit_rate:8.2%}")


if __name__ == "__main__":
    main()
