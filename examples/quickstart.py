"""Quickstart: compare Base and FIGCache-Fast on one memory-intensive app.

Builds a single-core DDR4 system, runs the ``lbm`` synthetic workload on the
conventional Base configuration and on FIGCache-Fast, and prints the speedup
plus the in-DRAM cache and row-buffer statistics the paper reports.

Run with:  python examples/quickstart.py
"""

from repro.sim import make_system_config, run_workload
from repro.workloads import get_benchmark


def main() -> None:
    benchmark = get_benchmark("lbm")
    trace = benchmark.make_trace(10000)

    base_config = make_system_config("Base", channels=1)
    figcache_config = make_system_config("FIGCache-Fast", channels=1)

    base = run_workload(base_config, [trace], "lbm")
    figcache = run_workload(figcache_config, [trace], "lbm")

    speedup = figcache.cores[0].ipc / base.cores[0].ipc
    print(f"workload: lbm ({len(trace)} memory instructions)")
    print(f"Base          IPC: {base.cores[0].ipc:.3f}  "
          f"row-buffer hit rate: {base.row_buffer_hit_rate:.2%}")
    print(f"FIGCache-Fast IPC: {figcache.cores[0].ipc:.3f}  "
          f"row-buffer hit rate: {figcache.row_buffer_hit_rate:.2%}")
    print(f"FIGCache-Fast in-DRAM cache hit rate: "
          f"{figcache.in_dram_cache_hit_rate:.2%}")
    print(f"speedup of FIGCache-Fast over Base: {speedup:.3f}x")
    print(f"DRAM energy, FIGCache-Fast vs Base: "
          f"{figcache.energy.dram_nj / base.energy.dram_nj:.3f}x")


if __name__ == "__main__":
    main()
